//! Dense, typed identifiers for customers, vendors and ad types.
//!
//! All three entity kinds are stored in `Vec`s inside a
//! [`ProblemInstance`](crate::ProblemInstance); an id is the index into
//! the corresponding `Vec`. Newtypes keep the three index spaces from
//! being mixed up at compile time.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index as a `usize`, for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize, "id out of range");
                Self(raw as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a customer `u_i` (index into the customer table).
    CustomerId,
    "u"
);
define_id!(
    /// Identifier of a vendor `v_j` (index into the vendor table).
    VendorId,
    "v"
);
define_id!(
    /// Identifier of an ad type `τ_k` (index into the ad-type table).
    AdTypeId,
    "t"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let c = CustomerId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "u7");
        assert_eq!(VendorId::from(3usize).to_string(), "v3");
        assert_eq!(AdTypeId::from(1u32).to_string(), "t1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CustomerId::new(1) < CustomerId::new(2));
        assert_eq!(VendorId::new(5), VendorId::from(5usize));
    }
}
