//! Runtime sanitizer for the workspace's zero-allocation and finite-math
//! claims (DESIGN.md §14).
//!
//! The solver hot loops are *documented* as allocation-free and
//! NaN-free, and `muaa-lint` rule D6 enforces the allocation claim
//! statically inside every `#[muaa::hot]`-annotated function. This
//! module is the dynamic half of that cross-check: built with the
//! `muaa-sanitize` feature, `muaa-core` installs a counting
//! [`std::alloc::GlobalAlloc`] with **thread-local** accounting and the
//! hot kernels wrap themselves in RAII guard regions:
//!
//! * [`AllocGuard::strict`] — panics on drop if the current thread
//!   allocated inside the region. Placed around regions that must be
//!   allocation-free on *every* call (the pair-base kernels, the fused
//!   similarity pass).
//! * [`AllocGuard::counting`] — records the region's allocation count
//!   in a global registry without panicking. Placed around regions that
//!   are zero-allocation only at steady state (query paths pushing into
//!   caller-reused buffers); tests warm the buffers up, reset the
//!   registry, and assert the steady-state count is zero.
//! * [`NanGuard`] — panics on drop if any value fed through
//!   [`note_f64`] inside the region was NaN or ±∞.
//!
//! Accounting is strictly per-thread: a guard opened on one thread never
//! observes another thread's allocations, so guarded regions inside
//! [`crate::par::par_map`] workers stay meaningful. Region statistics
//! are aggregated *across* threads into a process-wide registry (guard
//! drops are infrequent; the hot path itself only touches thread
//! locals).
//!
//! Without the `muaa-sanitize` feature every type here is a zero-sized
//! no-op and every function an empty `#[inline]` stub, so annotated hot
//! code pays nothing in normal builds.

#[cfg(feature = "muaa-sanitize")]
mod real {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    thread_local! {
        /// Allocations (alloc/realloc/alloc_zeroed) made by this thread.
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
        /// Non-finite values observed by [`note_f64`] on this thread.
        static NONFINITE: Cell<u64> = const { Cell::new(0) };
        /// When set, the counting allocator ignores this thread's
        /// allocations (used while updating the global registry so a
        /// registry insert never trips an enclosing guard).
        static SUSPENDED: Cell<bool> = const { Cell::new(false) };
    }

    /// The counting allocator: defers to [`System`] and bumps the
    /// thread-local counter on every allocating call.
    struct CountingAlloc;

    impl CountingAlloc {
        fn count_one() {
            // `try_with` so allocations during TLS teardown (thread
            // exit) never panic inside the allocator.
            let _ = ALLOCS.try_with(|c| {
                let _ = SUSPENDED.try_with(|s| {
                    if !s.get() {
                        c.set(c.get() + 1);
                    }
                });
            });
        }
    }

    // SAFETY: every method forwards verbatim to `System`, which upholds
    // the GlobalAlloc contract; the counter bump has no effect on the
    // returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: same layout contract as `System::alloc`.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            Self::count_one();
            System.alloc(layout)
        }

        // SAFETY: same pointer/layout contract as `System::dealloc`.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        // SAFETY: same layout contract as `System::alloc_zeroed`.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            Self::count_one();
            System.alloc_zeroed(layout)
        }

        // SAFETY: same pointer/layout contract as `System::realloc`.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            Self::count_one();
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Per-region totals aggregated across all guard drops.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct RegionStats {
        /// Guarded entries into the region (guard drops observed).
        pub entries: u64,
        /// Allocations observed inside the region, summed over entries.
        pub allocations: u64,
        /// Non-finite values noted inside the region, summed over
        /// entries.
        pub nonfinite: u64,
    }

    static REGISTRY: Mutex<BTreeMap<&'static str, RegionStats>> = Mutex::new(BTreeMap::new());

    fn record(region: &'static str, allocations: u64, nonfinite: u64) {
        let prev = SUSPENDED.with(|s| s.replace(true));
        {
            // Poisoning only happens if a panic occurred *inside* this
            // short critical section; recover the data either way.
            let mut map = match REGISTRY.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let entry = map.entry(region).or_default();
            entry.entries += 1;
            entry.allocations += allocations;
            entry.nonfinite += nonfinite;
        }
        SUSPENDED.with(|s| s.set(prev));
    }

    /// `true`: this build carries the sanitizer.
    pub fn enabled() -> bool {
        true
    }

    /// Run `f` with this thread's allocation accounting suspended.
    ///
    /// For *one-time infrastructure initialisation* that may land inside
    /// a strict [`AllocGuard`] region on its very first call — e.g. the
    /// SIMD kernel dispatch (DESIGN.md §16) reading `MUAA_FORCE_SCALAR`
    /// from the environment the first time a hot kernel runs. Such an
    /// allocation is real but happens exactly once per process, so it is
    /// excluded the same way the registry's own bookkeeping is. Not for
    /// steady-state code: anything allocating per call must either be
    /// fixed or carry a justified `lint: allow(hot_alloc)`.
    pub fn suspended<R>(f: impl FnOnce() -> R) -> R {
        let prev = SUSPENDED.with(|s| s.replace(true));
        let out = f();
        SUSPENDED.with(|s| s.set(prev));
        out
    }

    /// Allocations made by the current thread so far (monotone).
    pub fn thread_alloc_count() -> u64 {
        ALLOCS.with(Cell::get)
    }

    /// Non-finite values noted by the current thread so far (monotone).
    pub fn thread_nonfinite_count() -> u64 {
        NONFINITE.with(Cell::get)
    }

    /// Record one value produced by a hot kernel; NaN and ±∞ bump the
    /// thread-local non-finite counter that [`NanGuard`] checks.
    #[inline]
    pub fn note_f64(value: f64) {
        if !value.is_finite() {
            NONFINITE.with(|c| c.set(c.get() + 1));
        }
    }

    /// Snapshot of the per-region registry, sorted by region name.
    pub fn region_stats() -> Vec<(&'static str, RegionStats)> {
        let map = match REGISTRY.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        map.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Reset the per-region registry (tests use this between a warm-up
    /// pass and the steady-state assertion).
    pub fn reset_region_stats() {
        let mut map = match REGISTRY.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        map.clear();
    }

    /// RAII allocation region. See the module docs for the
    /// strict/counting split.
    #[derive(Debug)]
    pub struct AllocGuard {
        region: &'static str,
        start: u64,
        strict: bool,
    }

    impl AllocGuard {
        /// A region that must never allocate: the guard panics on drop
        /// if the current thread allocated while it was live.
        #[inline]
        pub fn strict(region: &'static str) -> Self {
            AllocGuard {
                region,
                start: thread_alloc_count(),
                strict: true,
            }
        }

        /// A region whose allocations are recorded but tolerated
        /// (steady-state-zero regions; tests assert on the registry).
        #[inline]
        pub fn counting(region: &'static str) -> Self {
            AllocGuard {
                region,
                start: thread_alloc_count(),
                strict: false,
            }
        }

        /// Allocations observed on this thread since the guard opened.
        pub fn allocations(&self) -> u64 {
            thread_alloc_count() - self.start
        }
    }

    impl Drop for AllocGuard {
        fn drop(&mut self) {
            let delta = self.allocations();
            record(self.region, delta, 0);
            if self.strict && delta > 0 && !std::thread::panicking() {
                panic!(
                    "muaa-sanitize: zero-alloc region `{}` performed {} allocation(s)",
                    self.region, delta
                );
            }
        }
    }

    /// RAII finite-math region: panics on drop if any [`note_f64`] call
    /// made by this thread inside the region saw a NaN or ±∞.
    #[derive(Debug)]
    pub struct NanGuard {
        region: &'static str,
        start: u64,
    }

    impl NanGuard {
        /// Open a finite-math region.
        #[inline]
        pub fn new(region: &'static str) -> Self {
            NanGuard {
                region,
                start: thread_nonfinite_count(),
            }
        }
    }

    impl Drop for NanGuard {
        fn drop(&mut self) {
            let delta = thread_nonfinite_count() - self.start;
            if delta > 0 {
                record(self.region, 0, delta);
                if !std::thread::panicking() {
                    panic!(
                        "muaa-sanitize: region `{}` produced {} non-finite value(s)",
                        self.region, delta
                    );
                }
            }
        }
    }
}

#[cfg(not(feature = "muaa-sanitize"))]
mod real {
    /// Per-region totals; always empty without `muaa-sanitize`.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct RegionStats {
        /// Guarded entries into the region.
        pub entries: u64,
        /// Allocations observed inside the region.
        pub allocations: u64,
        /// Non-finite values noted inside the region.
        pub nonfinite: u64,
    }

    /// `false`: this build has no sanitizer; all guards are no-ops.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Without `muaa-sanitize` there is no accounting to suspend: runs
    /// `f` directly.
    #[inline(always)]
    pub fn suspended<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Always 0 without `muaa-sanitize`.
    #[inline(always)]
    pub fn thread_alloc_count() -> u64 {
        0
    }

    /// Always 0 without `muaa-sanitize`.
    #[inline(always)]
    pub fn thread_nonfinite_count() -> u64 {
        0
    }

    /// No-op without `muaa-sanitize`.
    #[inline(always)]
    pub fn note_f64(_value: f64) {}

    /// Always empty without `muaa-sanitize`.
    #[inline(always)]
    pub fn region_stats() -> Vec<(&'static str, RegionStats)> {
        Vec::new()
    }

    /// No-op without `muaa-sanitize`.
    #[inline(always)]
    pub fn reset_region_stats() {}

    /// Zero-sized no-op stand-in for the sanitizing allocation guard.
    #[derive(Debug)]
    pub struct AllocGuard;

    impl AllocGuard {
        /// No-op without `muaa-sanitize`.
        #[inline(always)]
        pub fn strict(_region: &'static str) -> Self {
            AllocGuard
        }

        /// No-op without `muaa-sanitize`.
        #[inline(always)]
        pub fn counting(_region: &'static str) -> Self {
            AllocGuard
        }

        /// Always 0 without `muaa-sanitize`.
        #[inline(always)]
        pub fn allocations(&self) -> u64 {
            0
        }
    }

    /// Zero-sized no-op stand-in for the finite-math guard.
    #[derive(Debug)]
    pub struct NanGuard;

    impl NanGuard {
        /// No-op without `muaa-sanitize`.
        #[inline(always)]
        pub fn new(_region: &'static str) -> Self {
            NanGuard
        }
    }
}

pub use real::{
    enabled, note_f64, region_stats, reset_region_stats, suspended, thread_alloc_count,
    thread_nonfinite_count, AllocGuard, NanGuard, RegionStats,
};

#[cfg(all(test, feature = "muaa-sanitize"))]
mod tests {
    use super::*;

    // The allocation counter is thread-local, so tests about *this*
    // thread's counter are immune to the test harness's own threads.

    #[test]
    fn counter_observes_allocations() {
        let before = thread_alloc_count();
        let v: Vec<u64> = Vec::with_capacity(32);
        assert!(thread_alloc_count() > before, "Vec::with_capacity must count");
        drop(v);
    }

    #[test]
    fn strict_guard_passes_on_clean_region() {
        let guard = AllocGuard::strict("test.clean");
        let mut acc = 0u64;
        for i in 0..1000u64 {
            acc = acc.wrapping_add(i * i);
        }
        assert_eq!(guard.allocations(), 0);
        drop(guard);
        assert!(acc > 0);
    }

    #[test]
    fn strict_guard_panics_on_allocation() {
        let result = std::panic::catch_unwind(|| {
            let _guard = AllocGuard::strict("test.dirty");
            let v: Vec<u64> = Vec::with_capacity(8);
            drop(v);
        });
        assert!(result.is_err(), "strict guard must panic when the region allocates");
    }

    #[test]
    fn counting_guard_records_without_panicking() {
        reset_region_stats();
        {
            let _guard = AllocGuard::counting("test.counting");
            let v: Vec<u64> = Vec::with_capacity(8);
            drop(v);
        }
        let stats = region_stats();
        let (_, s) = stats
            .iter()
            .find(|(name, _)| *name == "test.counting")
            .expect("region recorded");
        assert_eq!(s.entries, 1);
        assert!(s.allocations >= 1);
    }

    #[test]
    fn guards_nest_and_attribute_to_both_regions() {
        reset_region_stats();
        {
            let _outer = AllocGuard::counting("test.nest.outer");
            {
                let _inner = AllocGuard::counting("test.nest.inner");
                let v: Vec<u64> = Vec::with_capacity(8);
                drop(v);
            }
        }
        let stats = region_stats();
        let get = |name: &str| {
            stats
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
                .expect("region recorded")
        };
        // The inner allocation is inside both live regions, and the
        // registry update for the inner guard is suspended so it does
        // not inflate the outer count.
        assert!(get("test.nest.inner").allocations >= 1);
        assert_eq!(get("test.nest.inner").allocations, get("test.nest.outer").allocations);
    }

    #[test]
    fn guard_on_one_thread_ignores_other_threads_allocations() {
        use std::sync::mpsc;
        let (ready_tx, ready_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel();
        let noisy = std::thread::spawn(move || {
            // Allocate furiously until told to stop.
            ready_tx.send(()).expect("main alive");
            let mut sink = 0usize;
            while done_rx.try_recv().is_err() {
                let v: Vec<u64> = Vec::with_capacity(64);
                sink = sink.wrapping_add(v.capacity());
            }
            sink
        });
        ready_rx.recv().expect("worker started");
        {
            // Strict guard on this thread: must not observe the worker.
            let guard = AllocGuard::strict("test.cross_thread");
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i ^ (i << 7));
            }
            assert_eq!(guard.allocations(), 0, "foreign-thread allocations leaked in");
            std::hint::black_box(acc);
        }
        done_tx.send(()).expect("worker alive");
        noisy.join().expect("worker exits");
    }

    #[test]
    fn suspended_allocations_are_invisible_to_strict_guards() {
        let guard = AllocGuard::strict("test.suspended");
        suspended(|| {
            let v: Vec<u64> = Vec::with_capacity(8);
            drop(v);
        });
        assert_eq!(guard.allocations(), 0, "suspended init must not count");
        drop(guard);
    }

    #[test]
    fn nan_guard_passes_finite_and_panics_on_nan() {
        {
            let _g = NanGuard::new("test.nan.clean");
            note_f64(1.0);
            note_f64(-2.5e300);
        }
        let result = std::panic::catch_unwind(|| {
            let _g = NanGuard::new("test.nan.dirty");
            note_f64(f64::NAN);
        });
        assert!(result.is_err(), "NanGuard must panic on a noted NaN");
        let result = std::panic::catch_unwind(|| {
            let _g = NanGuard::new("test.inf.dirty");
            note_f64(f64::INFINITY);
        });
        assert!(result.is_err(), "NanGuard must panic on a noted infinity");
    }

    #[test]
    fn nested_alloc_guards_cross_thread_via_par_map() {
        // A strict guard inside each par_map worker: workers allocate
        // their own result Vecs *outside* the guarded closure body, so
        // the guarded arithmetic region stays clean on every worker.
        let items: Vec<u64> = (0..512).collect();
        let out = crate::par::par_map(&items, 16, |_, &x| {
            let _g = AllocGuard::strict("test.par_worker");
            x.wrapping_mul(2654435761)
        });
        assert_eq!(out.len(), 512);
    }
}
