//! The MUAA problem instance: the offline snapshot `(U_φ, V_φ, T)`,
//! plus the epoch-counted mutation API ([`ProblemInstance::apply_delta`])
//! that lets the snapshot evolve in place between solver runs.

use crate::activity::ActivityProfile;
use crate::delta::{Delta, DeltaBatch};
use crate::entities::{AdType, Customer, Vendor};
use crate::error::CoreError;
use crate::ids::{AdTypeId, CustomerId, VendorId};
use crate::money::Money;

/// A complete MUAA problem instance (Definition 5 inputs).
///
/// Customers are stored in arrival order: online algorithms consume them
/// front-to-back, offline algorithms see the whole snapshot at once.
/// The instance is mutable through the typed [`Delta`] vocabulary only;
/// every applied delta bumps [`ProblemInstance::epoch`] so derived
/// indexes can detect staleness cheaply.
#[derive(Clone, Debug)]
pub struct ProblemInstance {
    customers: Vec<Customer>,
    vendors: Vec<Vendor>,
    ad_types: Vec<AdType>,
    tag_universe: usize,
    epoch: u64,
}

impl ProblemInstance {
    /// Build and validate an instance. Prefer [`InstanceBuilder`] for
    /// incremental construction.
    pub fn new(
        customers: Vec<Customer>,
        vendors: Vec<Vendor>,
        ad_types: Vec<AdType>,
    ) -> Result<Self, CoreError> {
        if ad_types.is_empty() {
            return Err(CoreError::NoAdTypes);
        }
        let tag_universe = customers
            .first()
            .map(|c| c.interests.len())
            .or_else(|| vendors.first().map(|v| v.tags.len()))
            .unwrap_or(0);
        for (i, c) in customers.iter().enumerate() {
            let id = CustomerId::from(i);
            c.validate(id)?;
            if c.interests.len() != tag_universe {
                return Err(CoreError::TagUniverseMismatch {
                    entity: format!("customer {id}"),
                    got: c.interests.len(),
                    expected: tag_universe,
                });
            }
        }
        for (j, v) in vendors.iter().enumerate() {
            let id = VendorId::from(j);
            v.validate(id)?;
            if v.tags.len() != tag_universe {
                return Err(CoreError::TagUniverseMismatch {
                    entity: format!("vendor {id}"),
                    got: v.tags.len(),
                    expected: tag_universe,
                });
            }
        }
        for (k, t) in ad_types.iter().enumerate() {
            t.validate(AdTypeId::from(k))?;
        }
        Ok(ProblemInstance {
            customers,
            vendors,
            ad_types,
            tag_universe,
            epoch: 0,
        })
    }

    /// Monotone mutation counter: starts at 0 and increments once per
    /// successfully applied [`Delta`]. Two instances with equal epochs
    /// that share a construction history are identical, so derived
    /// structures key their validity on this value.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Validate and apply one delta; bumps the epoch on success and
    /// leaves the instance untouched on error.
    pub fn apply(&mut self, delta: &Delta) -> Result<(), CoreError> {
        match delta {
            Delta::AddCustomer(c) => {
                let id = CustomerId::from(self.customers.len());
                c.validate(id)?;
                if c.interests.len() != self.tag_universe {
                    return Err(CoreError::TagUniverseMismatch {
                        entity: format!("customer {id}"),
                        got: c.interests.len(),
                        expected: self.tag_universe,
                    });
                }
                self.customers.push(c.clone());
            }
            Delta::RemoveCustomer(id) => {
                self.check_customer(*id)?;
                self.customers.swap_remove(id.index());
            }
            Delta::MoveCustomer(id, to) => {
                self.check_customer(*id)?;
                if !to.is_finite() {
                    return Err(CoreError::InvalidCustomer {
                        id: *id,
                        reason: "non-finite location".into(),
                    });
                }
                self.customers[id.index()].location = *to;
            }
            Delta::VendorBudget(id, budget) => {
                self.check_vendor(*id)?;
                self.vendors[id.index()].budget = *budget;
            }
            Delta::VendorRadius(id, radius) => {
                self.check_vendor(*id)?;
                if !radius.is_finite() || *radius < 0.0 {
                    return Err(CoreError::InvalidVendor {
                        id: *id,
                        reason: format!("radius {radius} must be finite and non-negative"),
                    });
                }
                self.vendors[id.index()].radius = *radius;
            }
            Delta::AdType(id, t) => {
                if id.index() >= self.ad_types.len() {
                    return Err(CoreError::UnknownId {
                        what: format!("ad type {id}"),
                    });
                }
                t.validate(*id)?;
                self.ad_types[id.index()] = t.clone();
            }
        }
        self.epoch += 1;
        Ok(())
    }

    /// Apply a batch front to back. Stops at the first invalid delta,
    /// leaving the valid prefix applied (each prefix delta bumped the
    /// epoch); the instance is always in a consistent state.
    pub fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<(), CoreError> {
        for delta in batch {
            self.apply(delta)?;
        }
        Ok(())
    }

    fn check_customer(&self, id: CustomerId) -> Result<(), CoreError> {
        if id.index() >= self.customers.len() {
            return Err(CoreError::UnknownId {
                what: format!("customer {id}"),
            });
        }
        Ok(())
    }

    fn check_vendor(&self, id: VendorId) -> Result<(), CoreError> {
        if id.index() >= self.vendors.len() {
            return Err(CoreError::UnknownId {
                what: format!("vendor {id}"),
            });
        }
        Ok(())
    }

    /// All customers, in arrival order.
    #[inline]
    pub fn customers(&self) -> &[Customer] {
        &self.customers
    }

    /// All vendors.
    #[inline]
    pub fn vendors(&self) -> &[Vendor] {
        &self.vendors
    }

    /// All ad types.
    #[inline]
    pub fn ad_types(&self) -> &[AdType] {
        &self.ad_types
    }

    /// Size of the tag universe `|Ψ|` shared by all tag vectors.
    #[inline]
    pub fn tag_universe(&self) -> usize {
        self.tag_universe
    }

    /// Number of customers `m`.
    #[inline]
    pub fn num_customers(&self) -> usize {
        self.customers.len()
    }

    /// Number of vendors `n`.
    #[inline]
    pub fn num_vendors(&self) -> usize {
        self.vendors.len()
    }

    /// Number of ad types `q`.
    #[inline]
    pub fn num_ad_types(&self) -> usize {
        self.ad_types.len()
    }

    /// Look up a customer.
    #[inline]
    pub fn customer(&self, id: CustomerId) -> &Customer {
        &self.customers[id.index()]
    }

    /// Look up a vendor.
    #[inline]
    pub fn vendor(&self, id: VendorId) -> &Vendor {
        &self.vendors[id.index()]
    }

    /// Look up an ad type.
    #[inline]
    pub fn ad_type(&self, id: AdTypeId) -> &AdType {
        &self.ad_types[id.index()]
    }

    /// Iterate over `(id, customer)` pairs.
    pub fn customers_enumerated(&self) -> impl Iterator<Item = (CustomerId, &Customer)> {
        self.customers
            .iter()
            .enumerate()
            .map(|(i, c)| (CustomerId::from(i), c))
    }

    /// Iterate over `(id, vendor)` pairs.
    pub fn vendors_enumerated(&self) -> impl Iterator<Item = (VendorId, &Vendor)> {
        self.vendors
            .iter()
            .enumerate()
            .map(|(j, v)| (VendorId::from(j), v))
    }

    /// Iterate over `(id, ad type)` pairs.
    pub fn ad_types_enumerated(&self) -> impl Iterator<Item = (AdTypeId, &AdType)> {
        self.ad_types
            .iter()
            .enumerate()
            .map(|(k, t)| (AdTypeId::from(k), t))
    }

    /// The cheapest ad-type cost — the threshold below which a vendor's
    /// remaining budget can buy nothing.
    pub fn min_ad_cost(&self) -> Money {
        self.ad_types
            .iter()
            .map(|t| t.cost)
            .min()
            .unwrap_or(Money::ZERO)
    }

    /// Aggregate statistics, for reports and sanity checks.
    pub fn stats(&self) -> InstanceStats {
        let total_budget: Money = self.vendors.iter().map(|v| v.budget).sum();
        let total_capacity: u64 = self.customers.iter().map(|c| u64::from(c.capacity)).sum();
        let mean_radius = if self.vendors.is_empty() {
            0.0
        } else {
            self.vendors.iter().map(|v| v.radius).sum::<f64>() / self.vendors.len() as f64
        };
        InstanceStats {
            customers: self.customers.len(),
            vendors: self.vendors.len(),
            ad_types: self.ad_types.len(),
            tag_universe: self.tag_universe,
            total_budget,
            total_capacity,
            mean_radius,
        }
    }
}

/// Aggregate statistics of a [`ProblemInstance`].
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceStats {
    /// Number of customers `m`.
    pub customers: usize,
    /// Number of vendors `n`.
    pub vendors: usize,
    /// Number of ad types `q`.
    pub ad_types: usize,
    /// Tag-universe size `w`.
    pub tag_universe: usize,
    /// Sum of all vendor budgets.
    pub total_budget: Money,
    /// Sum of all customer capacities.
    pub total_capacity: u64,
    /// Mean vendor radius.
    pub mean_radius: f64,
}

/// Incremental builder for [`ProblemInstance`].
///
/// ```
/// use muaa_core::*;
/// let instance = InstanceBuilder::new()
///     .ad_type(AdType::new("TL", Money::from_dollars(1.0), 0.1))
///     .customer(Customer {
///         location: Point::new(0.5, 0.5),
///         capacity: 2,
///         view_probability: 0.3,
///         interests: TagVector::zeros(2),
///         arrival: Timestamp::MIDNIGHT,
///     })
///     .vendor(Vendor {
///         location: Point::new(0.4, 0.5),
///         radius: 0.2,
///         budget: Money::from_dollars(3.0),
///         tags: TagVector::zeros(2),
///     })
///     .build()
///     .unwrap();
/// assert_eq!(instance.num_customers(), 1);
/// ```
#[derive(Default, Debug)]
pub struct InstanceBuilder {
    customers: Vec<Customer>,
    vendors: Vec<Vendor>,
    ad_types: Vec<AdType>,
    activity: Option<ActivityProfile>,
}

impl InstanceBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a customer; returns `self` for chaining.
    pub fn customer(mut self, c: Customer) -> Self {
        self.customers.push(c);
        self
    }

    /// Add many customers.
    pub fn customers(mut self, cs: impl IntoIterator<Item = Customer>) -> Self {
        self.customers.extend(cs);
        self
    }

    /// Add a vendor.
    pub fn vendor(mut self, v: Vendor) -> Self {
        self.vendors.push(v);
        self
    }

    /// Add many vendors.
    pub fn vendors(mut self, vs: impl IntoIterator<Item = Vendor>) -> Self {
        self.vendors.extend(vs);
        self
    }

    /// Add an ad type.
    pub fn ad_type(mut self, t: AdType) -> Self {
        self.ad_types.push(t);
        self
    }

    /// Add many ad types.
    pub fn ad_types(mut self, ts: impl IntoIterator<Item = AdType>) -> Self {
        self.ad_types.extend(ts);
        self
    }

    /// Attach an activity profile to be retrieved with the instance
    /// (builders that also produce utility models use it).
    pub fn activity(mut self, profile: ActivityProfile) -> Self {
        self.activity = Some(profile);
        self
    }

    /// Validate and build the instance; also returns the activity
    /// profile if one was attached.
    pub fn build_with_activity(
        self,
    ) -> Result<(ProblemInstance, Option<ActivityProfile>), CoreError> {
        let inst = ProblemInstance::new(self.customers, self.vendors, self.ad_types)?;
        Ok((inst, self.activity))
    }

    /// Validate and build the instance.
    pub fn build(self) -> Result<ProblemInstance, CoreError> {
        ProblemInstance::new(self.customers, self.vendors, self.ad_types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Timestamp;
    use crate::geo::Point;
    use crate::tags::TagVector;

    fn ad() -> AdType {
        AdType::new("TL", Money::from_dollars(1.0), 0.1)
    }

    fn cust(tags: usize) -> Customer {
        Customer {
            location: Point::new(0.5, 0.5),
            capacity: 2,
            view_probability: 0.3,
            interests: TagVector::zeros(tags),
            arrival: Timestamp::MIDNIGHT,
        }
    }

    fn vend(tags: usize) -> Vendor {
        Vendor {
            location: Point::new(0.4, 0.5),
            radius: 0.2,
            budget: Money::from_dollars(3.0),
            tags: TagVector::zeros(tags),
        }
    }

    #[test]
    fn builder_builds_valid_instance() {
        let inst = InstanceBuilder::new()
            .ad_type(ad())
            .customer(cust(2))
            .vendor(vend(2))
            .build()
            .unwrap();
        assert_eq!(inst.num_customers(), 1);
        assert_eq!(inst.num_vendors(), 1);
        assert_eq!(inst.num_ad_types(), 1);
        assert_eq!(inst.tag_universe(), 2);
    }

    #[test]
    fn rejects_missing_ad_types() {
        let err = InstanceBuilder::new()
            .customer(cust(2))
            .build()
            .unwrap_err();
        assert_eq!(err, CoreError::NoAdTypes);
    }

    #[test]
    fn rejects_tag_universe_mismatch() {
        let err = InstanceBuilder::new()
            .ad_type(ad())
            .customer(cust(2))
            .vendor(vend(3))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::TagUniverseMismatch { .. }));
    }

    #[test]
    fn rejects_invalid_entities() {
        let mut bad = cust(2);
        bad.view_probability = -0.1;
        assert!(InstanceBuilder::new()
            .ad_type(ad())
            .customer(bad)
            .build()
            .is_err());

        let mut bad = vend(2);
        bad.radius = f64::INFINITY;
        assert!(InstanceBuilder::new()
            .ad_type(ad())
            .vendor(bad)
            .build()
            .is_err());
    }

    #[test]
    fn stats_aggregate() {
        let inst = InstanceBuilder::new()
            .ad_type(ad())
            .ad_type(AdType::new("PL", Money::from_dollars(2.0), 0.4))
            .customers([cust(2), cust(2)])
            .vendor(vend(2))
            .build()
            .unwrap();
        let s = inst.stats();
        assert_eq!(s.customers, 2);
        assert_eq!(s.total_capacity, 4);
        assert_eq!(s.total_budget, Money::from_dollars(3.0));
        assert!((s.mean_radius - 0.2).abs() < 1e-12);
        assert_eq!(inst.min_ad_cost(), Money::from_dollars(1.0));
    }

    #[test]
    fn lookup_and_enumeration() {
        let inst = InstanceBuilder::new()
            .ad_type(ad())
            .customers([cust(2), cust(2)])
            .vendor(vend(2))
            .build()
            .unwrap();
        assert_eq!(inst.customer(CustomerId::new(1)).capacity, 2);
        assert_eq!(inst.vendor(VendorId::new(0)).radius, 0.2);
        assert_eq!(inst.ad_type(AdTypeId::new(0)).name, "TL");
        assert_eq!(inst.customers_enumerated().count(), 2);
        assert_eq!(inst.vendors_enumerated().count(), 1);
        assert_eq!(inst.ad_types_enumerated().count(), 1);
    }
}
