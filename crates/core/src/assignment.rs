//! Ad assignment instances and assignment sets (paper Definition 4),
//! with full feasibility validation against Definition 5.

use crate::ids::{AdTypeId, CustomerId, VendorId};
use crate::instance::ProblemInstance;
use crate::money::Money;
use crate::utility::UtilityModel;
use std::collections::HashSet;
use std::fmt;

/// One ad assignment instance `⟨u_i, v_j, τ_k⟩`: vendor `v_j` sends
/// customer `u_i` one ad of type `τ_k`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Assignment {
    /// The receiving customer `u_i`.
    pub customer: CustomerId,
    /// The advertising vendor `v_j`.
    pub vendor: VendorId,
    /// The ad type `τ_k`.
    pub ad_type: AdTypeId,
}

impl Assignment {
    /// Construct an assignment triple.
    pub const fn new(customer: CustomerId, vendor: VendorId, ad_type: AdTypeId) -> Self {
        Assignment {
            customer,
            vendor,
            ad_type,
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}, {}>", self.customer, self.vendor, self.ad_type)
    }
}

/// A constraint violation found by [`AssignmentSet::check_feasibility`].
#[derive(Clone, PartialEq, Debug)]
pub enum Violation {
    /// Constraint 1: the customer is outside the vendor's radius.
    OutOfRange {
        /// The offending assignment.
        assignment: Assignment,
        /// Measured distance.
        distance: f64,
        /// The vendor's radius `r_j`.
        radius: f64,
    },
    /// Constraint 2: a customer received more ads than `a_i`.
    CapacityExceeded {
        /// The overloaded customer.
        customer: CustomerId,
        /// Ads assigned to the customer.
        assigned: u32,
        /// The capacity `a_i`.
        capacity: u32,
    },
    /// Constraint 3: a vendor spent more than its budget `B_j`.
    BudgetExceeded {
        /// The overspending vendor.
        vendor: VendorId,
        /// Money spent.
        spent: Money,
        /// The budget `B_j`.
        budget: Money,
    },
    /// Constraint 4: more than one ad for the same (customer, vendor)
    /// pair.
    DuplicatePair {
        /// The duplicated customer.
        customer: CustomerId,
        /// The duplicated vendor.
        vendor: VendorId,
    },
    /// An assignment referenced an entity outside the instance.
    DanglingReference {
        /// The offending assignment.
        assignment: Assignment,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutOfRange {
                assignment,
                distance,
                radius,
            } => {
                write!(
                    f,
                    "{assignment}: distance {distance:.4} exceeds radius {radius:.4}"
                )
            }
            Violation::CapacityExceeded {
                customer,
                assigned,
                capacity,
            } => {
                write!(f, "{customer}: {assigned} ads exceed capacity {capacity}")
            }
            Violation::BudgetExceeded {
                vendor,
                spent,
                budget,
            } => {
                write!(f, "{vendor}: spent {spent} exceeds budget {budget}")
            }
            Violation::DuplicatePair { customer, vendor } => {
                write!(f, "duplicate pair ({customer}, {vendor})")
            }
            Violation::DanglingReference { assignment } => {
                write!(f, "{assignment}: references an unknown entity")
            }
        }
    }
}

/// The result of a feasibility check.
#[derive(Clone, Debug, Default)]
pub struct FeasibilityReport {
    /// Every violation found (empty iff feasible).
    pub violations: Vec<Violation>,
}

impl FeasibilityReport {
    /// `true` iff no violations were found.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An ad assignment instance set `I` (Definition 4) with incremental
/// bookkeeping of per-vendor spend and per-customer load, so that
/// solvers can ask "does this assignment still fit?" in `O(1)`.
#[derive(Clone, Debug)]
pub struct AssignmentSet {
    assignments: Vec<Assignment>,
    /// Spend per vendor, indexed by `VendorId`.
    vendor_spend: Vec<Money>,
    /// Ads received per customer, indexed by `CustomerId`.
    customer_load: Vec<u32>,
    /// Occupied (customer, vendor) pairs, for constraint 4.
    pairs: HashSet<(u32, u32)>,
}

impl AssignmentSet {
    /// An empty set sized for `instance`.
    pub fn new(instance: &ProblemInstance) -> Self {
        AssignmentSet {
            assignments: Vec::new(),
            vendor_spend: vec![Money::ZERO; instance.num_vendors()],
            customer_load: vec![0; instance.num_customers()],
            pairs: HashSet::new(),
        }
    }

    /// Number of assignments in the set.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The assignments, in insertion order.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Money already spent by `vendor`.
    pub fn vendor_spend(&self, vendor: VendorId) -> Money {
        self.vendor_spend[vendor.index()]
    }

    /// Remaining budget of `vendor` in `instance`.
    pub fn remaining_budget(&self, instance: &ProblemInstance, vendor: VendorId) -> Money {
        instance
            .vendor(vendor)
            .budget
            .saturating_sub(self.vendor_spend(vendor))
    }

    /// Used-budget ratio `δ_j = b(I_j) / B_j` (paper §IV); 1.0 for a
    /// zero-budget vendor.
    pub fn used_budget_ratio(&self, instance: &ProblemInstance, vendor: VendorId) -> f64 {
        let budget = instance.vendor(vendor).budget;
        if budget.is_zero() {
            return 1.0;
        }
        self.vendor_spend(vendor).as_cents() as f64 / budget.as_cents() as f64
    }

    /// Ads already assigned to `customer`.
    pub fn customer_load(&self, customer: CustomerId) -> u32 {
        self.customer_load[customer.index()]
    }

    /// `true` iff the (customer, vendor) pair already carries an ad.
    pub fn pair_used(&self, customer: CustomerId, vendor: VendorId) -> bool {
        self.pairs.contains(&(customer.0, vendor.0))
    }

    /// `true` iff adding `a` would keep constraints 2–4 satisfied
    /// (capacity, budget, pair uniqueness). The spatial constraint 1 is
    /// the caller's responsibility — solvers only generate in-range
    /// candidates, and range checking needs the utility model's distance.
    pub fn fits(&self, instance: &ProblemInstance, a: Assignment) -> bool {
        if self.pair_used(a.customer, a.vendor) {
            return false;
        }
        if self.customer_load(a.customer) >= instance.customer(a.customer).capacity {
            return false;
        }
        let cost = instance.ad_type(a.ad_type).cost;
        self.vendor_spend(a.vendor) + cost <= instance.vendor(a.vendor).budget
    }

    /// Add an assignment after checking [`fits`](Self::fits); returns
    /// `false` (and leaves the set unchanged) if it does not fit.
    pub fn try_push(&mut self, instance: &ProblemInstance, a: Assignment) -> bool {
        if !self.fits(instance, a) {
            return false;
        }
        self.push_unchecked(instance, a);
        true
    }

    /// Add an assignment without re-checking constraints. Debug builds
    /// assert the invariants.
    pub fn push_unchecked(&mut self, instance: &ProblemInstance, a: Assignment) {
        debug_assert!(
            self.fits(instance, a),
            "push_unchecked violates constraints: {a}"
        );
        self.vendor_spend[a.vendor.index()] += instance.ad_type(a.ad_type).cost;
        self.customer_load[a.customer.index()] += 1;
        self.pairs.insert((a.customer.0, a.vendor.0));
        self.assignments.push(a);
    }

    /// Mirror a [`Delta::AddCustomer`](crate::delta::Delta) onto the
    /// bookkeeping: the new customer starts with zero load. Streaming
    /// layers call this right after applying the delta to the instance.
    pub fn on_customer_added(&mut self) {
        self.customer_load.push(0);
    }

    /// Mirror a [`Delta::RemoveCustomer`](crate::delta::Delta) swap
    /// remove onto the bookkeeping: the removed customer must carry no
    /// assignments (returns `false` and leaves the set untouched
    /// otherwise), and the renamed former-last customer's assignments
    /// and pair keys are re-keyed to `cid`.
    pub fn on_customer_swap_removed(&mut self, cid: CustomerId) -> bool {
        if self.customer_load(cid) != 0 {
            return false;
        }
        let last = self.customer_load.len() - 1;
        self.customer_load.swap_remove(cid.index());
        if cid.index() != last {
            // Re-key via the assignment list, not by iterating the
            // hash set: every pair of the renamed customer appears
            // there (cid itself carries none — load checked above), so
            // this stays deterministic and O(len).
            let old = CustomerId::from(last);
            let mut moved: Vec<u32> = Vec::new();
            for a in &mut self.assignments {
                if a.customer == old {
                    a.customer = cid;
                    moved.push(a.vendor.0);
                }
            }
            for vendor in moved {
                self.pairs.remove(&(old.0, vendor));
                self.pairs.insert((cid.0, vendor));
            }
        }
        true
    }

    /// Remove an assignment (by value); returns `true` if it was
    /// present. `O(len)`.
    pub fn remove(&mut self, instance: &ProblemInstance, a: Assignment) -> bool {
        let Some(pos) = self.assignments.iter().position(|&x| x == a) else {
            return false;
        };
        self.assignments.swap_remove(pos);
        self.vendor_spend[a.vendor.index()] -= instance.ad_type(a.ad_type).cost;
        self.customer_load[a.customer.index()] -= 1;
        self.pairs.remove(&(a.customer.0, a.vendor.0));
        true
    }

    /// Total utility `λ(I) = Σ λ_ijk` under `model`.
    pub fn total_utility(&self, instance: &ProblemInstance, model: &dyn UtilityModel) -> f64 {
        self.assignments
            .iter()
            .map(|a| {
                model.utility(
                    a.customer,
                    instance.customer(a.customer),
                    a.vendor,
                    instance.vendor(a.vendor),
                    instance.ad_type(a.ad_type),
                )
            })
            .sum()
    }

    /// Total money spent across all vendors.
    pub fn total_spend(&self) -> Money {
        self.vendor_spend.iter().copied().sum()
    }

    /// Check all four constraints of Definition 5 from scratch
    /// (including the spatial constraint, which needs `model` for
    /// distances) and report every violation.
    pub fn check_feasibility(
        &self,
        instance: &ProblemInstance,
        model: &dyn UtilityModel,
    ) -> FeasibilityReport {
        let mut report = FeasibilityReport::default();
        let mut seen_pairs: HashSet<(u32, u32)> = HashSet::with_capacity(self.assignments.len());
        let mut load = vec![0u32; instance.num_customers()];
        let mut spend = vec![Money::ZERO; instance.num_vendors()];

        for &a in &self.assignments {
            if a.customer.index() >= instance.num_customers()
                || a.vendor.index() >= instance.num_vendors()
                || a.ad_type.index() >= instance.num_ad_types()
            {
                report
                    .violations
                    .push(Violation::DanglingReference { assignment: a });
                continue;
            }
            if !seen_pairs.insert((a.customer.0, a.vendor.0)) {
                report.violations.push(Violation::DuplicatePair {
                    customer: a.customer,
                    vendor: a.vendor,
                });
            }
            load[a.customer.index()] += 1;
            spend[a.vendor.index()] += instance.ad_type(a.ad_type).cost;

            let vendor = instance.vendor(a.vendor);
            let d = model.distance(a.customer, instance.customer(a.customer), a.vendor, vendor);
            if d > vendor.radius {
                report.violations.push(Violation::OutOfRange {
                    assignment: a,
                    distance: d,
                    radius: vendor.radius,
                });
            }
        }
        for (i, &l) in load.iter().enumerate() {
            let cap = instance.customer(CustomerId::from(i)).capacity;
            if l > cap {
                report.violations.push(Violation::CapacityExceeded {
                    customer: CustomerId::from(i),
                    assigned: l,
                    capacity: cap,
                });
            }
        }
        for (j, &s) in spend.iter().enumerate() {
            let budget = instance.vendor(VendorId::from(j)).budget;
            if s > budget {
                report.violations.push(Violation::BudgetExceeded {
                    vendor: VendorId::from(j),
                    spent: s,
                    budget,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Timestamp;
    use crate::entities::{AdType, Customer, Vendor};
    use crate::geo::Point;
    use crate::instance::InstanceBuilder;
    use crate::tags::TagVector;
    use crate::utility::PearsonUtility;

    fn small_instance() -> ProblemInstance {
        InstanceBuilder::new()
            .ad_type(AdType::new("TL", Money::from_dollars(1.0), 0.1))
            .ad_type(AdType::new("PL", Money::from_dollars(2.0), 0.4))
            .customers([
                Customer {
                    location: Point::new(0.1, 0.1),
                    capacity: 1,
                    view_probability: 0.3,
                    interests: TagVector::new(vec![1.0, 0.0]).unwrap(),
                    arrival: Timestamp::MIDNIGHT,
                },
                Customer {
                    location: Point::new(0.2, 0.1),
                    capacity: 2,
                    view_probability: 0.2,
                    interests: TagVector::new(vec![0.0, 1.0]).unwrap(),
                    arrival: Timestamp::MIDNIGHT,
                },
            ])
            .vendors([
                Vendor {
                    location: Point::new(0.1, 0.2),
                    radius: 0.5,
                    budget: Money::from_dollars(3.0),
                    tags: TagVector::new(vec![1.0, 0.0]).unwrap(),
                },
                Vendor {
                    location: Point::new(0.9, 0.9),
                    radius: 0.1,
                    budget: Money::from_dollars(2.0),
                    tags: TagVector::new(vec![0.0, 1.0]).unwrap(),
                },
            ])
            .build()
            .unwrap()
    }

    fn asg(c: u32, v: u32, t: u32) -> Assignment {
        Assignment::new(CustomerId::new(c), VendorId::new(v), AdTypeId::new(t))
    }

    #[test]
    fn push_updates_bookkeeping() {
        let inst = small_instance();
        let mut set = AssignmentSet::new(&inst);
        assert!(set.try_push(&inst, asg(0, 0, 1)));
        assert_eq!(set.len(), 1);
        assert_eq!(set.vendor_spend(VendorId::new(0)), Money::from_dollars(2.0));
        assert_eq!(set.customer_load(CustomerId::new(0)), 1);
        assert!(set.pair_used(CustomerId::new(0), VendorId::new(0)));
        assert_eq!(
            set.remaining_budget(&inst, VendorId::new(0)),
            Money::from_dollars(1.0)
        );
        assert!((set.used_budget_ratio(&inst, VendorId::new(0)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_constraint_enforced() {
        let inst = small_instance();
        let mut set = AssignmentSet::new(&inst);
        assert!(set.try_push(&inst, asg(0, 0, 0)));
        // Customer 0 has capacity 1: second ad (from another vendor) must fail.
        assert!(!set.try_push(&inst, asg(0, 1, 0)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn budget_constraint_enforced() {
        let inst = small_instance();
        let mut set = AssignmentSet::new(&inst);
        // Vendor 1 budget $2: one PL ($2) fills it.
        assert!(set.try_push(&inst, asg(1, 1, 1)));
        assert!(!set.try_push(&inst, asg(0, 1, 0)));
    }

    #[test]
    fn pair_uniqueness_enforced() {
        let inst = small_instance();
        let mut set = AssignmentSet::new(&inst);
        assert!(set.try_push(&inst, asg(1, 0, 0)));
        // Same pair, different ad type: still rejected (constraint 4).
        assert!(!set.try_push(&inst, asg(1, 0, 1)));
    }

    #[test]
    fn remove_restores_capacity_and_budget() {
        let inst = small_instance();
        let mut set = AssignmentSet::new(&inst);
        let a = asg(0, 0, 1);
        assert!(set.try_push(&inst, a));
        assert!(set.remove(&inst, a));
        assert!(!set.remove(&inst, a));
        assert_eq!(set.len(), 0);
        assert_eq!(set.vendor_spend(VendorId::new(0)), Money::ZERO);
        assert_eq!(set.customer_load(CustomerId::new(0)), 0);
        assert!(!set.pair_used(CustomerId::new(0), VendorId::new(0)));
        // Can re-add after removal.
        assert!(set.try_push(&inst, a));
    }

    #[test]
    fn feasibility_report_flags_out_of_range() {
        let inst = small_instance();
        let model = PearsonUtility::uniform(2);
        let mut set = AssignmentSet::new(&inst);
        // Customer 0 is far from vendor 1 (radius 0.1).
        assert!(set.try_push(&inst, asg(0, 1, 0)));
        let report = set.check_feasibility(&inst, &model);
        assert!(!report.is_feasible());
        assert!(matches!(report.violations[0], Violation::OutOfRange { .. }));
    }

    #[test]
    fn feasibility_report_clean_for_valid_set() {
        let inst = small_instance();
        let model = PearsonUtility::uniform(2);
        let mut set = AssignmentSet::new(&inst);
        assert!(set.try_push(&inst, asg(0, 0, 1)));
        assert!(set.try_push(&inst, asg(1, 0, 0)));
        let report = set.check_feasibility(&inst, &model);
        assert!(report.is_feasible(), "{:?}", report.violations);
        assert_eq!(set.total_spend(), Money::from_dollars(3.0));
    }

    #[test]
    fn total_utility_sums_eq4() {
        let inst = small_instance();
        let model = PearsonUtility::uniform(2);
        let mut set = AssignmentSet::new(&inst);
        assert!(set.try_push(&inst, asg(0, 0, 1)));
        let expected = model.utility(
            CustomerId::new(0),
            inst.customer(CustomerId::new(0)),
            VendorId::new(0),
            inst.vendor(VendorId::new(0)),
            inst.ad_type(AdTypeId::new(1)),
        );
        assert!((set.total_utility(&inst, &model) - expected).abs() < 1e-12);
        assert!(expected > 0.0);
    }

    #[test]
    fn violation_display_is_readable() {
        let v = Violation::CapacityExceeded {
            customer: CustomerId::new(3),
            assigned: 5,
            capacity: 2,
        };
        assert!(v.to_string().contains("u3"));
        let v = Violation::DuplicatePair {
            customer: CustomerId::new(1),
            vendor: VendorId::new(2),
        };
        assert!(v.to_string().contains("v2"));
        let v = Violation::BudgetExceeded {
            vendor: VendorId::new(4),
            spent: Money::from_dollars(5.0),
            budget: Money::from_dollars(3.0),
        };
        assert!(v.to_string().contains("$5.00"));
        let a = asg(0, 0, 0);
        let v = Violation::OutOfRange {
            assignment: a,
            distance: 1.5,
            radius: 0.5,
        };
        assert!(v.to_string().contains("1.5"));
        let v = Violation::DanglingReference { assignment: a };
        assert!(v.to_string().contains("unknown"));
    }

    #[test]
    fn feasibility_detects_duplicates_and_dangling_refs() {
        // Construct a set through the unchecked path to plant
        // violations the incremental API would have refused.
        let inst = small_instance();
        let model = PearsonUtility::uniform(2);
        let mut set = AssignmentSet::new(&inst);
        assert!(set.try_push(&inst, asg(1, 0, 0)));
        // Manually clone the assignment list with a duplicate pair and a
        // dangling ad type by constructing a fresh set via push of the
        // raw assignments — simulate a set deserialized from elsewhere.
        let mut forged = set.clone();
        // Duplicate pair (bypass try_push safety with a direct second
        // push of the same pair under the other ad type is rejected, so
        // verify the detector on a hand-built list instead).
        let report = forged.check_feasibility(&inst, &model);
        assert!(report.is_feasible());
        // Remove the entry and re-add twice via remove+push to confirm
        // pair bookkeeping blocks duplicates at the API level.
        assert!(forged.remove(&inst, asg(1, 0, 0)));
        assert!(forged.try_push(&inst, asg(1, 0, 0)));
        assert!(!forged.try_push(&inst, asg(1, 0, 1)));
    }

    #[test]
    fn customer_delta_hooks_rekey_bookkeeping() {
        let inst = small_instance();
        let mut set = AssignmentSet::new(&inst);
        assert!(set.try_push(&inst, asg(1, 0, 0)));
        // Removing a loaded customer is refused, set untouched.
        assert!(!set.on_customer_swap_removed(CustomerId::new(1)));
        assert_eq!(set.customer_load(CustomerId::new(1)), 1);
        // Removing customer 0 swap-renames loaded customer 1 -> 0.
        assert!(set.on_customer_swap_removed(CustomerId::new(0)));
        assert_eq!(set.customer_load(CustomerId::new(0)), 1);
        assert!(set.pair_used(CustomerId::new(0), VendorId::new(0)));
        assert_eq!(set.assignments()[0].customer, CustomerId::new(0));
        // A fresh arrival takes the next id with zero load.
        set.on_customer_added();
        assert_eq!(set.customer_load(CustomerId::new(1)), 0);
    }

    #[test]
    fn used_budget_ratio_handles_zero_budget_vendor() {
        // A zero-budget vendor reports δ = 1 (fully used), so adaptive
        // thresholds treat it as maximally filtered rather than
        // dividing by zero.
        let inst = InstanceBuilder::new()
            .ad_type(AdType::new("TL", Money::from_dollars(1.0), 0.1))
            .customer(Customer {
                location: Point::new(0.1, 0.1),
                capacity: 1,
                view_probability: 0.5,
                interests: TagVector::zeros(1),
                arrival: Timestamp::MIDNIGHT,
            })
            .vendor(Vendor {
                location: Point::new(0.1, 0.1),
                radius: 0.5,
                budget: Money::ZERO,
                tags: TagVector::zeros(1),
            })
            .build()
            .unwrap();
        let set = AssignmentSet::new(&inst);
        assert_eq!(set.used_budget_ratio(&inst, VendorId::new(0)), 1.0);
        assert_eq!(set.remaining_budget(&inst, VendorId::new(0)), Money::ZERO);
        // Nothing fits a zero budget.
        let mut set = set;
        assert!(!set.try_push(&inst, asg(0, 0, 0)));
    }
}
