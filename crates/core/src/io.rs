//! Plain-text instance serialization.
//!
//! A [`ProblemInstance`] round-trips through a simple sectioned
//! tab-separated format, so workloads can be generated once, archived,
//! and replayed across runs/machines (the experiments' CSV outputs
//! cover *results*; this covers *inputs*):
//!
//! ```text
//! #muaa-instance v1
//! [meta]
//! tags\t<w>
//! [ad_types]
//! <name>\t<cost_cents>\t<effectiveness>
//! [customers]
//! <x>\t<y>\t<capacity>\t<view_prob>\t<arrival_hours>\t<s1,s2,…,sw>
//! [vendors]
//! <x>\t<y>\t<radius>\t<budget_cents>\t<s1,s2,…,sw>
//! ```
//!
//! Lines starting with `#` (other than the magic header) and blank
//! lines are ignored. Floats are written with `{:?}`-style shortest
//! round-trip formatting, so read-back is bit-exact.

use crate::activity::Timestamp;
use crate::entities::{AdType, Customer, Vendor};
use crate::geo::Point;
use crate::instance::{InstanceBuilder, ProblemInstance};
use crate::money::Money;
use crate::tags::TagVector;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Magic first line of the format.
pub const MAGIC: &str = "#muaa-instance v1";

/// Errors raised while reading an instance file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file did not start with [`MAGIC`].
    BadMagic,
    /// A structural or parse failure at a specific line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The parsed data failed instance validation.
    Invalid(crate::error::CoreError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::BadMagic => write!(f, "not a muaa instance file (missing {MAGIC:?})"),
            IoError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            IoError::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serialize `instance` to `out`.
pub fn write_instance(instance: &ProblemInstance, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "[meta]")?;
    writeln!(out, "tags\t{}", instance.tag_universe())?;

    writeln!(out, "[ad_types]")?;
    for t in instance.ad_types() {
        writeln!(
            out,
            "{}\t{}\t{:?}",
            t.name.replace(['\t', '\n'], " "),
            t.cost.as_cents(),
            t.effectiveness
        )?;
    }

    writeln!(out, "[customers]")?;
    for c in instance.customers() {
        writeln!(
            out,
            "{:?}\t{:?}\t{}\t{:?}\t{:?}\t{}",
            c.location.x,
            c.location.y,
            c.capacity,
            c.view_probability,
            c.arrival.hours(),
            join_scores(&c.interests),
        )?;
    }

    writeln!(out, "[vendors]")?;
    for v in instance.vendors() {
        writeln!(
            out,
            "{:?}\t{:?}\t{:?}\t{}\t{}",
            v.location.x,
            v.location.y,
            v.radius,
            v.budget.as_cents(),
            join_scores(&v.tags),
        )?;
    }
    Ok(())
}

/// Serialize to an in-memory string.
pub fn to_string(instance: &ProblemInstance) -> String {
    let mut buf = Vec::new();
    // Writing into a Vec is infallible. lint: allow(unwrap)
    write_instance(instance, &mut buf).expect("writing to a Vec cannot fail");
    // The serializer emits ASCII only. lint: allow(unwrap)
    String::from_utf8(buf).expect("format is ASCII/UTF-8")
}

fn join_scores(v: &TagVector) -> String {
    v.as_slice()
        .iter()
        .map(|s| format!("{s:?}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Meta,
    AdTypes,
    Customers,
    Vendors,
}

/// Deserialize an instance from `input`.
pub fn read_instance(input: &mut dyn BufRead) -> Result<ProblemInstance, IoError> {
    let mut lines = input.lines();
    let first = lines.next().transpose()?.ok_or(IoError::BadMagic)?;
    if first.trim() != MAGIC {
        return Err(IoError::BadMagic);
    }

    let mut section = Section::None;
    let mut tags: Option<usize> = None;
    let mut builder = InstanceBuilder::new();

    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[meta]" => {
                section = Section::Meta;
                continue;
            }
            "[ad_types]" => {
                section = Section::AdTypes;
                continue;
            }
            "[customers]" => {
                section = Section::Customers;
                continue;
            }
            "[vendors]" => {
                section = Section::Vendors;
                continue;
            }
            _ => {}
        }
        let parse_err = |reason: String| IoError::Parse {
            line: line_no,
            reason,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        match section {
            Section::None => {
                return Err(parse_err("content before any [section]".into()));
            }
            Section::Meta => {
                if fields.len() == 2 && fields[0] == "tags" {
                    tags = Some(
                        fields[1]
                            .parse()
                            .map_err(|e| parse_err(format!("bad tag count: {e}")))?,
                    );
                } else {
                    return Err(parse_err(format!("unknown meta entry {:?}", fields[0])));
                }
            }
            Section::AdTypes => {
                if fields.len() != 3 {
                    return Err(parse_err(format!(
                        "expected 3 fields, got {}",
                        fields.len()
                    )));
                }
                let cost: u64 = fields[1]
                    .parse()
                    .map_err(|e| parse_err(format!("bad cost: {e}")))?;
                let eff: f64 = fields[2]
                    .parse()
                    .map_err(|e| parse_err(format!("bad effectiveness: {e}")))?;
                builder = builder.ad_type(AdType::new(fields[0], Money::from_cents(cost), eff));
            }
            Section::Customers => {
                if fields.len() != 6 {
                    return Err(parse_err(format!(
                        "expected 6 fields, got {}",
                        fields.len()
                    )));
                }
                let f = parse_floats(&fields[..2], line_no)?;
                let capacity: u32 = fields[2]
                    .parse()
                    .map_err(|e| parse_err(format!("bad capacity: {e}")))?;
                let view: f64 = fields[3]
                    .parse()
                    .map_err(|e| parse_err(format!("bad view probability: {e}")))?;
                let arrival: f64 = fields[4]
                    .parse()
                    .map_err(|e| parse_err(format!("bad arrival: {e}")))?;
                let scores = parse_scores(fields[5], tags, line_no)?;
                builder = builder.customer(Customer {
                    location: Point::new(f[0], f[1]),
                    capacity,
                    view_probability: view,
                    interests: scores,
                    arrival: Timestamp::from_hours(arrival),
                });
            }
            Section::Vendors => {
                if fields.len() != 5 {
                    return Err(parse_err(format!(
                        "expected 5 fields, got {}",
                        fields.len()
                    )));
                }
                let f = parse_floats(&fields[..3], line_no)?;
                let budget: u64 = fields[3]
                    .parse()
                    .map_err(|e| parse_err(format!("bad budget: {e}")))?;
                let scores = parse_scores(fields[4], tags, line_no)?;
                builder = builder.vendor(Vendor {
                    location: Point::new(f[0], f[1]),
                    radius: f[2],
                    budget: Money::from_cents(budget),
                    tags: scores,
                });
            }
        }
    }
    builder.build().map_err(IoError::Invalid)
}

/// Deserialize from an in-memory string.
pub fn from_str(data: &str) -> Result<ProblemInstance, IoError> {
    read_instance(&mut data.as_bytes())
}

fn parse_floats(fields: &[&str], line: usize) -> Result<Vec<f64>, IoError> {
    fields
        .iter()
        .map(|s| {
            s.parse::<f64>().map_err(|e| IoError::Parse {
                line,
                reason: format!("bad float {s:?}: {e}"),
            })
        })
        .collect()
}

fn parse_scores(field: &str, tags: Option<usize>, line: usize) -> Result<TagVector, IoError> {
    let scores: Vec<f64> = if field.is_empty() {
        Vec::new()
    } else {
        field
            .split(',')
            .map(|s| {
                s.parse::<f64>().map_err(|e| IoError::Parse {
                    line,
                    reason: format!("bad tag score {s:?}: {e}"),
                })
            })
            .collect::<Result<_, _>>()?
    };
    if let Some(expected) = tags {
        if scores.len() != expected {
            return Err(IoError::Parse {
                line,
                reason: format!("expected {expected} tag scores, got {}", scores.len()),
            });
        }
    }
    TagVector::new(scores).map_err(|e| IoError::Parse {
        line,
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AdTypeId, CustomerId, VendorId};

    fn sample() -> ProblemInstance {
        InstanceBuilder::new()
            .ad_types([
                AdType::new("Text Link", Money::from_dollars(1.0), 0.1),
                AdType::new("Photo Link", Money::from_dollars(2.0), 0.4),
            ])
            .customer(Customer {
                location: Point::new(0.123456789, 0.5),
                capacity: 2,
                view_probability: 0.3,
                interests: TagVector::new(vec![0.25, 1.0, 0.0]).unwrap(),
                arrival: Timestamp::from_hours(17.25),
            })
            .vendor(Vendor {
                location: Point::new(0.9, 0.1),
                radius: 0.05,
                budget: Money::from_cents(12345),
                tags: TagVector::new(vec![1.0, 0.5, 0.0]).unwrap(),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_is_exact() {
        let inst = sample();
        let text = to_string(&inst);
        let back = from_str(&text).unwrap();
        assert_eq!(back.num_customers(), 1);
        assert_eq!(back.num_vendors(), 1);
        assert_eq!(back.num_ad_types(), 2);
        assert_eq!(back.tag_universe(), 3);
        let c0 = back.customer(CustomerId::new(0));
        let orig = inst.customer(CustomerId::new(0));
        assert_eq!(c0.location, orig.location);
        assert_eq!(c0.capacity, orig.capacity);
        assert_eq!(c0.view_probability, orig.view_probability);
        assert_eq!(c0.arrival.hours(), orig.arrival.hours());
        assert_eq!(c0.interests, orig.interests);
        let v0 = back.vendor(VendorId::new(0));
        assert_eq!(v0.budget, Money::from_cents(12345));
        assert_eq!(v0.radius, 0.05);
        assert_eq!(back.ad_type(AdTypeId::new(1)).name, "Photo Link");
    }

    #[test]
    fn rejects_missing_magic() {
        assert!(matches!(
            from_str("[meta]\ntags\t3\n"),
            Err(IoError::BadMagic)
        ));
        assert!(matches!(from_str(""), Err(IoError::BadMagic)));
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let text = format!("{MAGIC}\n[ad_types]\nTL\tnot-a-number\t0.1\n");
        match from_str(&text) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_field_counts() {
        let text = format!("{MAGIC}\n[customers]\n0.5\t0.5\t2\n");
        assert!(matches!(from_str(&text), Err(IoError::Parse { .. })));
    }

    #[test]
    fn rejects_tag_count_mismatch() {
        let text = format!(
            "{MAGIC}\n[meta]\ntags\t3\n[ad_types]\nTL\t100\t0.1\n[customers]\n0.5\t0.5\t2\t0.3\t0.0\t0.5,0.5\n"
        );
        match from_str(&text) {
            Err(IoError::Parse { reason, .. }) => assert!(reason.contains("expected 3")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_content_before_sections() {
        let text = format!("{MAGIC}\nstray\tline\n");
        assert!(matches!(from_str(&text), Err(IoError::Parse { .. })));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!(
            "{MAGIC}\n\n# a comment\n[ad_types]\nTL\t100\t0.1\n\n[customers]\n# none\n[vendors]\n"
        );
        let inst = from_str(&text).unwrap();
        assert_eq!(inst.num_ad_types(), 1);
        assert_eq!(inst.num_customers(), 0);
    }

    #[test]
    fn invalid_instances_are_caught_at_build() {
        // Zero-cost ad type parses but fails validation.
        let text = format!("{MAGIC}\n[ad_types]\nFree\t0\t0.1\n");
        assert!(matches!(from_str(&text), Err(IoError::Invalid(_))));
    }

    #[test]
    fn tabs_in_names_are_sanitised_on_write() {
        let inst = InstanceBuilder::new()
            .ad_type(AdType::new("weird\tname", Money::from_cents(100), 0.1))
            .build()
            .unwrap();
        let text = to_string(&inst);
        let back = from_str(&text).unwrap();
        assert_eq!(back.ad_type(AdTypeId::new(0)).name, "weird name");
    }
}
