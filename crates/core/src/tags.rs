//! Tag vectors `ψ` over the tag universe `Ψ = {g_1, …, g_w}`.
//!
//! Every customer and vendor carries a vector of per-tag scores in
//! `[0, 1]` (Definitions 1 and 2). The vector length is the size of the
//! tag universe and must agree across every entity in a problem
//! instance; [`crate::InstanceBuilder`] enforces this.

use crate::error::CoreError;
use std::ops::Index;

/// A per-tag score vector with entries in `[0, 1]`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TagVector {
    scores: Vec<f64>,
}

impl TagVector {
    /// Build a tag vector, validating every entry is finite and within
    /// `[0, 1]`.
    pub fn new(scores: Vec<f64>) -> Result<Self, CoreError> {
        for (idx, &s) in scores.iter().enumerate() {
            if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                return Err(CoreError::InvalidTagScore {
                    index: idx,
                    value: s,
                });
            }
        }
        Ok(TagVector { scores })
    }

    /// Build a tag vector without validation.
    ///
    /// Intended for generators that construct scores already known to be
    /// valid; debug builds still assert the invariant.
    pub fn new_unchecked(scores: Vec<f64>) -> Self {
        debug_assert!(
            scores
                .iter()
                .all(|s| s.is_finite() && (0.0..=1.0).contains(s)),
            "tag scores out of [0,1]"
        );
        TagVector { scores }
    }

    /// An all-zero vector over `len` tags.
    pub fn zeros(len: usize) -> Self {
        TagVector {
            scores: vec![0.0; len],
        }
    }

    /// A one-hot vector: score 1 for `tag`, 0 elsewhere — the paper's
    /// fallback for vendors whose only known information is their
    /// category ("we can simply set ψ_j^{(k)} = 1 if the vendor has been
    /// classified into category g_k").
    pub fn one_hot(len: usize, tag: usize) -> Result<Self, CoreError> {
        if tag >= len {
            return Err(CoreError::TagIndexOutOfRange { index: tag, len });
        }
        let mut scores = vec![0.0; len];
        scores[tag] = 1.0;
        Ok(TagVector { scores })
    }

    /// Number of tags in the universe this vector is defined over.
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` iff the tag universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The underlying scores.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.scores
    }

    /// Iterate over `(tag index, score)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.scores.iter().copied().enumerate()
    }

    /// Sum of all scores.
    pub fn total(&self) -> f64 {
        self.scores.iter().sum()
    }

    /// Rescale so the maximum entry becomes 1 (no-op for the zero
    /// vector). Useful after additive score propagation, which can
    /// produce arbitrary positive magnitudes.
    pub fn normalized_to_unit_max(&self) -> TagVector {
        let max = self.scores.iter().copied().fold(0.0_f64, f64::max);
        if max <= 0.0 {
            return self.clone();
        }
        TagVector {
            scores: self.scores.iter().map(|s| s / max).collect(),
        }
    }
}

impl Index<usize> for TagVector {
    type Output = f64;
    #[inline]
    fn index(&self, idx: usize) -> &f64 {
        &self.scores[idx]
    }
}

impl<'a> IntoIterator for &'a TagVector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.scores.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(TagVector::new(vec![0.0, 0.5, 1.0]).is_ok());
        assert!(matches!(
            TagVector::new(vec![0.0, 1.5]),
            Err(CoreError::InvalidTagScore { index: 1, .. })
        ));
        assert!(TagVector::new(vec![-0.1]).is_err());
        assert!(TagVector::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn one_hot_sets_single_tag() {
        let v = TagVector::one_hot(4, 2).unwrap();
        assert_eq!(v.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
        assert!(TagVector::one_hot(4, 4).is_err());
    }

    #[test]
    fn zeros_and_total() {
        let v = TagVector::zeros(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.total(), 0.0);
        let w = TagVector::new(vec![0.25, 0.5]).unwrap();
        assert!((w.total() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalization_scales_max_to_one() {
        let v = TagVector::new(vec![0.2, 0.4])
            .unwrap()
            .normalized_to_unit_max();
        assert!((v[1] - 1.0).abs() < 1e-12);
        assert!((v[0] - 0.5).abs() < 1e-12);
        // zero vector is left alone
        let z = TagVector::zeros(2).normalized_to_unit_max();
        assert_eq!(z.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn iteration_yields_indexed_scores() {
        let v = TagVector::new(vec![0.1, 0.9]).unwrap();
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(0, 0.1), (1, 0.9)]);
    }
}
