//! 2-D geometry: points and distances.
//!
//! The paper maps all locations (Foursquare check-ins as well as
//! synthetic data) into the unit square `[0,1]²` and uses Euclidean
//! distance. Equation (4) divides by the distance, so a minimum distance
//! clamp keeps utilities finite when a customer stands inside a shop.

/// Lower clamp applied to distances before they are used as a divisor in
/// the utility of Equation (4). See `DESIGN.md` §3.4.
pub const DEFAULT_MIN_DISTANCE: f64 = 1e-4;

/// A point in the 2-D data space.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the `sqrt` when only
    /// comparisons are needed, e.g. inside range queries).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance clamped below by `min_distance`; this is the
    /// `d(u_i, v_j, φ)` used as the divisor in Equation (4).
    #[inline]
    pub fn clamped_distance(&self, other: &Point, min_distance: f64) -> f64 {
        self.distance(other).max(min_distance)
    }

    /// `true` iff both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Clamp the point into the axis-aligned box `[lo, hi]²`.
    #[inline]
    pub fn clamp_to_box(&self, lo: f64, hi: f64) -> Point {
        Point::new(self.x.clamp(lo, hi), self.y.clamp(lo, hi))
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(0.1, 0.9);
        let b = Point::new(0.7, 0.2);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn clamped_distance_never_below_floor() {
        let a = Point::new(0.5, 0.5);
        assert_eq!(
            a.clamped_distance(&a, DEFAULT_MIN_DISTANCE),
            DEFAULT_MIN_DISTANCE
        );
        let b = Point::new(0.5, 0.6);
        assert!((a.clamped_distance(&b, DEFAULT_MIN_DISTANCE) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn clamp_to_box_clamps_both_axes() {
        let p = Point::new(-0.5, 1.5).clamp_to_box(0.0, 1.0);
        assert_eq!(p, Point::new(0.0, 1.0));
    }

    #[test]
    fn finiteness_check() {
        assert!(Point::new(0.0, 1.0).is_finite());
        assert!(!Point::new(f64::NAN, 1.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
