//! The three entity kinds of the MUAA problem: customers, vendors and
//! ad types (paper Definitions 1–3).

use crate::activity::Timestamp;
use crate::error::CoreError;
use crate::geo::Point;
use crate::ids::{AdTypeId, CustomerId, VendorId};
use crate::money::Money;
use crate::tags::TagVector;

/// A spatial customer `u_i` (Definition 1).
#[derive(Clone, Debug)]
pub struct Customer {
    /// Location `l(u_i, φ)` at the customer's arrival timestamp.
    pub location: Point,
    /// Maximum number of ads `a_i` the customer is willing to receive.
    pub capacity: u32,
    /// Probability `p_i` that the customer views a received ad.
    pub view_probability: f64,
    /// Interest vector `ψ_i` over the tag universe.
    pub interests: TagVector,
    /// Arrival timestamp `φ`; drives activity weighting and the arrival
    /// order seen by online algorithms.
    pub arrival: Timestamp,
}

impl Customer {
    /// Validate the customer's fields (location finite, probability in
    /// `[0, 1]`).
    pub fn validate(&self, id: CustomerId) -> Result<(), CoreError> {
        if !self.location.is_finite() {
            return Err(CoreError::InvalidCustomer {
                id,
                reason: "non-finite location".into(),
            });
        }
        if !self.view_probability.is_finite() || !(0.0..=1.0).contains(&self.view_probability) {
            return Err(CoreError::InvalidCustomer {
                id,
                reason: format!("view probability {} outside [0,1]", self.view_probability),
            });
        }
        Ok(())
    }
}

/// A spatial vendor `v_j` (Definition 2).
#[derive(Clone, Debug)]
pub struct Vendor {
    /// Location `l(v_j)`.
    pub location: Point,
    /// Radius `r_j` of the circular area the vendor's ads may reach.
    pub radius: f64,
    /// Advertising budget `B_j` deposited with the broker.
    pub budget: Money,
    /// Tag vector `ψ_j` describing the vendor.
    pub tags: TagVector,
}

impl Vendor {
    /// Validate the vendor's fields (finite location, non-negative
    /// finite radius).
    pub fn validate(&self, id: VendorId) -> Result<(), CoreError> {
        if !self.location.is_finite() {
            return Err(CoreError::InvalidVendor {
                id,
                reason: "non-finite location".into(),
            });
        }
        if !self.radius.is_finite() || self.radius < 0.0 {
            return Err(CoreError::InvalidVendor {
                id,
                reason: format!("radius {} must be finite and non-negative", self.radius),
            });
        }
        Ok(())
    }

    /// `true` iff `point` lies inside the vendor's broadcast area
    /// (constraint 1 of Definition 5: `d(u_i, v_j) ≤ r_j`).
    #[inline]
    pub fn covers(&self, point: &Point) -> bool {
        self.location.distance_sq(point) <= self.radius * self.radius
    }
}

/// An ad type `τ_k` (Definition 3): e.g. text link, photo link, in-app
/// video. The paper assumes costlier types are more effective.
#[derive(Clone, Debug)]
pub struct AdType {
    /// Human-readable name ("Text Link", "Photo Link", …).
    pub name: String,
    /// Price `c_k` the vendor pays per sent ad of this type.
    pub cost: Money,
    /// Utility effectiveness `β_k ∈ [0, 1]`: the probability that a
    /// customer who viewed the ad acts on it.
    pub effectiveness: f64,
}

impl AdType {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cost: Money, effectiveness: f64) -> Self {
        AdType {
            name: name.into(),
            cost,
            effectiveness,
        }
    }

    /// Validate the ad type (positive cost so budget efficiency
    /// `λ / c_k` is well defined; effectiveness in `[0, 1]`).
    pub fn validate(&self, id: AdTypeId) -> Result<(), CoreError> {
        if self.cost.is_zero() {
            return Err(CoreError::InvalidAdType {
                id,
                reason: "cost must be positive".into(),
            });
        }
        if !self.effectiveness.is_finite() || !(0.0..=1.0).contains(&self.effectiveness) {
            return Err(CoreError::InvalidAdType {
                id,
                reason: format!("effectiveness {} outside [0,1]", self.effectiveness),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> Customer {
        Customer {
            location: Point::new(0.5, 0.5),
            capacity: 2,
            view_probability: 0.3,
            interests: TagVector::zeros(3),
            arrival: Timestamp::MIDNIGHT,
        }
    }

    #[test]
    fn customer_validation() {
        assert!(customer().validate(CustomerId::new(0)).is_ok());
        let mut c = customer();
        c.view_probability = 1.5;
        assert!(c.validate(CustomerId::new(0)).is_err());
        let mut c = customer();
        c.location = Point::new(f64::NAN, 0.0);
        assert!(c.validate(CustomerId::new(0)).is_err());
    }

    #[test]
    fn vendor_validation_and_coverage() {
        let v = Vendor {
            location: Point::new(0.0, 0.0),
            radius: 1.0,
            budget: Money::from_dollars(3.0),
            tags: TagVector::zeros(3),
        };
        assert!(v.validate(VendorId::new(0)).is_ok());
        assert!(v.covers(&Point::new(0.6, 0.8))); // distance exactly 1.0
        assert!(!v.covers(&Point::new(0.8, 0.8)));

        let mut bad = v.clone();
        bad.radius = -0.5;
        assert!(bad.validate(VendorId::new(0)).is_err());
    }

    #[test]
    fn zero_radius_vendor_covers_only_its_own_point() {
        let v = Vendor {
            location: Point::new(0.25, 0.25),
            radius: 0.0,
            budget: Money::from_dollars(1.0),
            tags: TagVector::zeros(1),
        };
        assert!(v.covers(&Point::new(0.25, 0.25)));
        assert!(!v.covers(&Point::new(0.250001, 0.25)));
    }

    #[test]
    fn ad_type_validation() {
        let t = AdType::new("Text Link", Money::from_dollars(1.0), 0.1);
        assert!(t.validate(AdTypeId::new(0)).is_ok());
        let free = AdType::new("Free", Money::ZERO, 0.1);
        assert!(free.validate(AdTypeId::new(0)).is_err());
        let weird = AdType::new("Weird", Money::from_dollars(1.0), 1.2);
        assert!(weird.validate(AdTypeId::new(0)).is_err());
    }
}
