//! Error types for instance construction and validation.

use crate::ids::{AdTypeId, CustomerId, VendorId};
use std::fmt;

/// Errors raised while building or validating MUAA problem data.
#[derive(Clone, PartialEq, Debug)]
pub enum CoreError {
    /// A tag score was outside `[0, 1]` or non-finite.
    InvalidTagScore {
        /// Tag index of the offending score.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A tag index exceeded the tag-universe size.
    TagIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The tag-universe size.
        len: usize,
    },
    /// An activity curve was malformed.
    InvalidActivityCurve {
        /// Tag the curve belongs to.
        tag: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An entity's tag vector length disagreed with the instance's tag
    /// universe.
    TagUniverseMismatch {
        /// What entity the vector belonged to.
        entity: String,
        /// The entity's vector length.
        got: usize,
        /// The instance's tag-universe size.
        expected: usize,
    },
    /// A customer field failed validation.
    InvalidCustomer {
        /// The customer.
        id: CustomerId,
        /// Human-readable reason.
        reason: String,
    },
    /// A vendor field failed validation.
    InvalidVendor {
        /// The vendor.
        id: VendorId,
        /// Human-readable reason.
        reason: String,
    },
    /// An ad type failed validation.
    InvalidAdType {
        /// The ad type.
        id: AdTypeId,
        /// Human-readable reason.
        reason: String,
    },
    /// The instance had no ad types (every assignment needs one).
    NoAdTypes,
    /// An id referenced an entity that does not exist in the instance.
    UnknownId {
        /// Description of the dangling reference.
        what: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidTagScore { index, value } => {
                write!(f, "tag score at index {index} is {value}, outside [0,1]")
            }
            CoreError::TagIndexOutOfRange { index, len } => {
                write!(
                    f,
                    "tag index {index} out of range for universe of {len} tags"
                )
            }
            CoreError::InvalidActivityCurve { tag, reason } => {
                write!(f, "invalid activity curve for tag {tag}: {reason}")
            }
            CoreError::TagUniverseMismatch {
                entity,
                got,
                expected,
            } => {
                write!(
                    f,
                    "{entity} has a {got}-tag vector but the instance universe has {expected} tags"
                )
            }
            CoreError::InvalidCustomer { id, reason } => {
                write!(f, "invalid customer {id}: {reason}")
            }
            CoreError::InvalidVendor { id, reason } => write!(f, "invalid vendor {id}: {reason}"),
            CoreError::InvalidAdType { id, reason } => write!(f, "invalid ad type {id}: {reason}"),
            CoreError::NoAdTypes => write!(f, "instance has no ad types"),
            CoreError::UnknownId { what } => write!(f, "unknown id: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidTagScore {
            index: 3,
            value: 2.0,
        };
        assert!(e.to_string().contains("index 3"));
        let e = CoreError::InvalidVendor {
            id: VendorId::new(2),
            reason: "negative radius".into(),
        };
        assert!(e.to_string().contains("v2"));
        assert!(e.to_string().contains("negative radius"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::NoAdTypes);
    }
}
