//! Timestamps and per-tag temporal activity `α_x(φ)`.
//!
//! The paper weights the Pearson correlation of Equation (5) with a
//! per-tag *active level* `α_x(φ)` — e.g. "coffee" is active in the
//! morning, "Chinese food" at lunch and dinner. We model a timestamp as
//! a time of day (the paper folds real check-in timestamps modulo 24 h)
//! and an [`ActivityProfile`] as a piecewise-hourly activity curve per
//! tag.

use crate::error::CoreError;

/// Hours in a day; timestamps live in `[0, 24)`.
pub const HOURS_PER_DAY: f64 = 24.0;

/// A time of day in fractional hours, wrapped into `[0, 24)`.
///
/// The paper observes that for the online algorithm only the *order* of
/// customer arrivals matters; the timestamp additionally drives the
/// temporal activity weights of Equation (5).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Timestamp(f64);

impl Timestamp {
    /// Construct from fractional hours; any finite value is folded into
    /// `[0, 24)` (matching the paper's "modulo the arrival times ... into
    /// 24 hours"). Non-finite input yields midnight.
    pub fn from_hours(hours: f64) -> Self {
        if !hours.is_finite() {
            return Timestamp(0.0);
        }
        Timestamp(hours.rem_euclid(HOURS_PER_DAY))
    }

    /// Construct from seconds since (any) midnight.
    pub fn from_seconds(seconds: f64) -> Self {
        Timestamp::from_hours(seconds / 3600.0)
    }

    /// The time in fractional hours, in `[0, 24)`.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0
    }

    /// The containing hour slot, in `0..24`.
    #[inline]
    pub fn hour_slot(self) -> usize {
        (self.0.floor() as usize).min(23)
    }

    /// Midnight.
    pub const MIDNIGHT: Timestamp = Timestamp(0.0);
}

/// Per-tag, per-hour activity levels `α_x(φ) ∈ [0, 1]`.
///
/// Stored as a dense `tags × 24` matrix of hourly levels; lookups
/// linearly interpolate between hour slots so that activity varies
/// smoothly over the day.
#[derive(Clone, Debug)]
pub struct ActivityProfile {
    /// `levels[tag * 24 + hour]`.
    levels: Vec<f64>,
    tags: usize,
}

impl ActivityProfile {
    /// A profile in which every tag is fully active at all times — this
    /// reduces Equation (5) to the plain (unweighted) Pearson
    /// correlation and is the right default when no temporal data is
    /// available.
    pub fn uniform(tags: usize) -> Self {
        ActivityProfile {
            levels: vec![1.0; tags * 24],
            tags,
        }
    }

    /// Build from explicit per-tag hourly curves. Each inner slice must
    /// have exactly 24 entries in `[0, 1]`.
    pub fn from_hourly(curves: &[Vec<f64>]) -> Result<Self, CoreError> {
        let mut levels = Vec::with_capacity(curves.len() * 24);
        for (tag, curve) in curves.iter().enumerate() {
            if curve.len() != 24 {
                return Err(CoreError::InvalidActivityCurve {
                    tag,
                    reason: format!("expected 24 hourly levels, got {}", curve.len()),
                });
            }
            for &lvl in curve {
                if !lvl.is_finite() || !(0.0..=1.0).contains(&lvl) {
                    return Err(CoreError::InvalidActivityCurve {
                        tag,
                        reason: format!("activity level {lvl} outside [0,1]"),
                    });
                }
                levels.push(lvl);
            }
        }
        Ok(ActivityProfile {
            levels,
            tags: curves.len(),
        })
    }

    /// Number of tags covered.
    #[inline]
    pub fn tags(&self) -> usize {
        self.tags
    }

    /// Activity level of `tag` at time `at`, linearly interpolated
    /// between hourly samples (wrapping around midnight).
    pub fn level(&self, tag: usize, at: Timestamp) -> f64 {
        debug_assert!(tag < self.tags, "tag {tag} out of range ({})", self.tags);
        let h = at.hours();
        let lo = h.floor() as usize % 24;
        let hi = (lo + 1) % 24;
        let frac = h - h.floor();
        let a = self.levels[tag * 24 + lo];
        let b = self.levels[tag * 24 + hi];
        a + (b - a) * frac
    }

    /// Fill `out` with the activity level of every tag at time `at`.
    /// `out` is resized to the number of tags.
    pub fn levels_at(&self, at: Timestamp, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.tags, 0.0);
        self.levels_at_slice(at, out);
    }

    /// Scratch-free sibling of [`levels_at`](Self::levels_at): write the
    /// per-tag activity levels at time `at` into a caller-owned buffer
    /// (stack array or reusable `Vec`) of length exactly
    /// [`tags`](Self::tags). The interpolation factors are hoisted out
    /// of the per-tag loop, and each written value is bit-identical to
    /// the corresponding [`level`](Self::level) call.
    pub fn levels_at_slice(&self, at: Timestamp, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.tags,
            "levels_at_slice buffer length must equal the tag count"
        );
        let h = at.hours();
        let lo = h.floor() as usize % 24;
        let hi = (lo + 1) % 24;
        let frac = h - h.floor();
        for (tag, slot) in out.iter_mut().enumerate() {
            let a = self.levels[tag * 24 + lo];
            let b = self.levels[tag * 24 + hi];
            *slot = a + (b - a) * frac;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_wraps_into_day() {
        assert!((Timestamp::from_hours(25.5).hours() - 1.5).abs() < 1e-12);
        assert!((Timestamp::from_hours(-1.0).hours() - 23.0).abs() < 1e-12);
        assert_eq!(Timestamp::from_hours(f64::NAN).hours(), 0.0);
        assert_eq!(Timestamp::from_seconds(3600.0).hours(), 1.0);
    }

    #[test]
    fn hour_slot_is_clamped() {
        assert_eq!(Timestamp::from_hours(5.9).hour_slot(), 5);
        assert_eq!(Timestamp::from_hours(23.999).hour_slot(), 23);
        assert_eq!(Timestamp::MIDNIGHT.hour_slot(), 0);
    }

    #[test]
    fn uniform_profile_is_all_ones() {
        let p = ActivityProfile::uniform(3);
        for tag in 0..3 {
            assert_eq!(p.level(tag, Timestamp::from_hours(13.37)), 1.0);
        }
    }

    #[test]
    fn from_hourly_validates() {
        assert!(ActivityProfile::from_hourly(&[vec![0.5; 23]]).is_err());
        assert!(ActivityProfile::from_hourly(&[vec![1.5; 24]]).is_err());
        assert!(ActivityProfile::from_hourly(&[vec![0.5; 24]]).is_ok());
    }

    #[test]
    fn level_interpolates_between_hours() {
        let mut curve = vec![0.0; 24];
        curve[6] = 0.0;
        curve[7] = 1.0;
        let p = ActivityProfile::from_hourly(&[curve]).unwrap();
        assert!((p.level(0, Timestamp::from_hours(6.5)) - 0.5).abs() < 1e-12);
        assert!((p.level(0, Timestamp::from_hours(6.25)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn level_wraps_around_midnight() {
        let mut curve = vec![0.0; 24];
        curve[23] = 1.0;
        curve[0] = 0.0;
        let p = ActivityProfile::from_hourly(&[curve]).unwrap();
        assert!((p.level(0, Timestamp::from_hours(23.5)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn levels_at_fills_all_tags() {
        let p = ActivityProfile::uniform(4);
        let mut out = Vec::new();
        p.levels_at(Timestamp::MIDNIGHT, &mut out);
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn levels_at_slice_matches_per_tag_level_exactly() {
        let curves: Vec<Vec<f64>> = (0..5)
            .map(|t| (0..24).map(|h| ((h * (t + 1)) % 24) as f64 / 23.0).collect())
            .collect();
        let p = ActivityProfile::from_hourly(&curves).unwrap();
        let mut buf = [0.0; 5];
        for at in [0.0, 6.25, 13.37, 23.75] {
            let ts = Timestamp::from_hours(at);
            p.levels_at_slice(ts, &mut buf);
            for (tag, &got) in buf.iter().enumerate() {
                assert_eq!(got.to_bits(), p.level(tag, ts).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn levels_at_slice_rejects_wrong_length() {
        let p = ActivityProfile::uniform(3);
        let mut buf = [0.0; 2];
        p.levels_at_slice(Timestamp::MIDNIGHT, &mut buf);
    }
}
