//! # muaa-core
//!
//! Domain model for the **Maximum Utility Ad Assignment (MUAA)** problem
//! from *"Maximizing the Utility in Location-Based Mobile Advertising"*
//! (ICDE 2019).
//!
//! The crate defines the entities of the paper's Section II:
//!
//! * [`Customer`] — a spatial customer `u_i` with location, ad capacity
//!   `a_i`, view probability `p_i`, arrival timestamp and tag-interest
//!   vector `ψ_i` (Definition 1),
//! * [`Vendor`] — a spatial vendor `v_j` with location, broadcast radius
//!   `r_j`, budget `B_j` and tag vector `ψ_j` (Definition 2),
//! * [`AdType`] — an ad type `τ_k` with cost `c_k` and utility
//!   effectiveness `β_k` (Definition 3),
//! * [`Assignment`] / [`AssignmentSet`] — the ad assignment instance set
//!   `I` of triples `⟨u_i, v_j, τ_k⟩` (Definition 4), with full
//!   feasibility validation against Definition 5's four constraints,
//! * [`UtilityModel`] — the utility `λ_ijk` of Equation (4), with the
//!   activity-weighted Pearson similarity of Equation (5)
//!   ([`PearsonUtility`]) and a table-driven variant matching the paper's
//!   worked Example 1 ([`TableUtility`]).
//!
//! Money is kept in integer cents ([`Money`]) so budget arithmetic is
//! exact; utilities are `f64`.
//!
//! ## Symbol table (paper Table III)
//!
//! | Paper symbol | Here |
//! |--------------|------|
//! | `U_φ` | `&[Customer]` in a [`ProblemInstance`] |
//! | `V_φ` | `&[Vendor]` in a [`ProblemInstance`] |
//! | `T` | `&[AdType]` in a [`ProblemInstance`] |
//! | `l(u_i)`, `l(v_j)` | [`Customer::location`], [`Vendor::location`] |
//! | `a_i` | [`Customer::capacity`] |
//! | `p_i` | [`Customer::view_probability`] |
//! | `r_j` | [`Vendor::radius`] |
//! | `B_j` | [`Vendor::budget`] |
//! | `c_k` | [`AdType::cost`] |
//! | `β_k` | [`AdType::effectiveness`] |
//! | `λ_ijk` | [`UtilityModel::utility`] |
//! | `γ_ijk = λ_ijk / c_k` | [`UtilityModel::efficiency`] |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod activity;
pub mod assignment;
pub mod delta;
pub mod entities;
pub mod error;
pub mod geo;
pub mod ids;
pub mod instance;
pub mod io;
pub mod money;
pub mod par;
pub mod sanitize;
pub mod simd;
pub mod tags;
pub mod utility;

pub use activity::{ActivityProfile, Timestamp};
pub use assignment::{Assignment, AssignmentSet, FeasibilityReport, Violation};
pub use delta::{Delta, DeltaBatch};
pub use entities::{AdType, Customer, Vendor};
pub use error::CoreError;
pub use geo::{Point, DEFAULT_MIN_DISTANCE};
pub use ids::{AdTypeId, CustomerId, VendorId};
pub use instance::{InstanceBuilder, InstanceStats, ProblemInstance};
pub use money::Money;
pub use tags::TagVector;
pub use utility::{CustomerMoments, PearsonUtility, TableUtility, UtilityModel};
