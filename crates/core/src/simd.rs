//! Explicit SIMD kernels for the Eq. (5) moment loops, with a canonical
//! lane schedule and one-time runtime dispatch (DESIGN.md §16).
//!
//! Every MUAA solver pass bottoms out in two tiny loops: the
//! *pair-side* accumulation `(swy, swyy, swxy)` over
//! `(weights, xs, ys)` and the *customer-side* accumulation
//! `(sw, swx, swxx)` over `(weights, xs)` — see
//! [`crate::utility::PearsonUtility`]. This module owns both, in three
//! spellings:
//!
//! * **canonical scalar** ([`pair_moments_scalar`],
//!   [`weight_moments_scalar`]) — the reference implementation, always
//!   compiled, written in the canonical lane schedule below;
//! * **AVX2** (`x86_64`, behind the `simd` feature) — the same schedule
//!   with 4-wide `__m256d` vectors, runtime-detected;
//! * **NEON** (`aarch64`, behind the `simd` feature) — the same
//!   schedule with two 2-wide `float64x2_t` vectors per moment; NEON is
//!   a baseline feature of the `aarch64` target, so no runtime probe.
//!
//! ## The canonical lane schedule
//!
//! Floating-point addition is not associative, so "same sums" is not
//! enough for the workspace's 0 ULP guarantees — every spelling must
//! perform *the same additions in the same order*. The schedule is:
//!
//! 1. split the input into `len / LANES` full chunks of [`LANES`] (= 4)
//!    elements; element `chunk*LANES + l` accumulates into per-lane
//!    partial `l` (so lane `l` sums elements `t ≡ l (mod 4)` of the
//!    chunked prefix, each lane a strictly sequential add chain);
//! 2. reduce horizontally in one fixed order: `(l0 + l1) + (l2 + l3)`;
//! 3. fold the ragged tail (`len % LANES` elements) into the reduced
//!    sum sequentially, in index order.
//!
//! The scalar spelling writes this schedule out with arrays; the SIMD
//! spellings map lane `l` to vector lane `l` and use separate
//! multiply/add instructions (**never FMA** — fused multiply-add skips
//! the intermediate rounding and would change results). Per-lane add
//! chains are therefore instruction-for-instruction identical, and the
//! reduction order is pinned, so scalar-chunked and SIMD agree
//! bit-for-bit on every input — the property the dispatch tests and the
//! determinism harness enforce.
//!
//! ## Dispatch
//!
//! [`kernels`] returns a `&'static` [`Kernels`] table resolved exactly
//! once per process (a [`OnceLock`]’d function-pointer table):
//! `MUAA_FORCE_SCALAR` (set, non-empty, not `"0"`) pins scalar;
//! otherwise `is_x86_feature_detected!("avx2")` selects AVX2 on
//! `x86_64`, NEON is unconditional on `aarch64`, and everything else
//! (including `--features simd` on hosts without AVX2) falls back to
//! the canonical scalar kernels. [`force_scalar`] /
//! [`with_forced_scalar`] are process-wide test/bench hooks layered
//! *over* the resolved table — they never perturb [`resolved`], so
//! dispatch-stability assertions and byte-diff runs can coexist.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Width of the canonical lane schedule. Fixed at 4 on every platform —
/// one AVX2 `__m256d`, two NEON `float64x2_t` — so the accumulation
/// order (and therefore every bit of every result) is
/// platform-independent.
pub const LANES: usize = 4;

/// Pair-side kernel signature: `(weights, xs, ys) → (swy, swyy, swxy)`.
pub type PairMomentsFn = fn(&[f64], &[f64], &[f64]) -> (f64, f64, f64);

/// Customer-side kernel signature: `(weights, xs) → (sw, swx, swxx)`.
pub type WeightMomentsFn = fn(&[f64], &[f64]) -> (f64, f64, f64);

/// A resolved kernel table: one implementation of each moment loop plus
/// the facts benches and reports need to stay honest about what ran.
#[derive(Debug)]
pub struct Kernels {
    /// Implementation name: `"scalar"`, `"avx2"` or `"neon"`.
    pub name: &'static str,
    /// `true` iff the table uses explicit SIMD intrinsics.
    pub simd: bool,
    /// `(weights, xs, ys) → (swy, swyy, swxy)`.
    pub pair_moments: PairMomentsFn,
    /// `(weights, xs) → (sw, swx, swxx)`.
    pub weight_moments: WeightMomentsFn,
}

// ---------------------------------------------------------------------
// Canonical scalar kernels (always compiled; the SIMD twins' reference)
// ---------------------------------------------------------------------

/// Canonical chunked spelling of the pair-side moment loop:
/// `(swy, swyy, swxy) = Σ (w·y, (w·y)·y, (w·x)·y)` in the module-level
/// lane schedule. This is the scalar twin of [`pair_moments_avx2`] /
/// [`pair_moments_neon`] — bit-identical to both by construction.
#[inline]
#[cfg_attr(any(), muaa::hot)]
pub fn pair_moments_scalar(weights: &[f64], xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(weights.len(), xs.len());
    debug_assert_eq!(weights.len(), ys.len());
    let n = ys.len();
    let chunks = n / LANES;
    let mut ly = [0.0f64; LANES];
    let mut lyy = [0.0f64; LANES];
    let mut lxy = [0.0f64; LANES];
    for k in 0..chunks {
        let base = k * LANES;
        for l in 0..LANES {
            let w = weights[base + l];
            let x = xs[base + l];
            let y = ys[base + l];
            let wy = w * y;
            ly[l] += wy;
            lyy[l] += wy * y;
            lxy[l] += (w * x) * y;
        }
    }
    let mut swy = (ly[0] + ly[1]) + (ly[2] + ly[3]);
    let mut swyy = (lyy[0] + lyy[1]) + (lyy[2] + lyy[3]);
    let mut swxy = (lxy[0] + lxy[1]) + (lxy[2] + lxy[3]);
    for t in chunks * LANES..n {
        let w = weights[t];
        let y = ys[t];
        let wy = w * y;
        swy += wy;
        swyy += wy * y;
        swxy += (w * xs[t]) * y;
    }
    (swy, swyy, swxy)
}

/// Canonical chunked spelling of the customer-side moment loop:
/// `(sw, swx, swxx) = Σ (w, w·x, (w·x)·x)` in the module-level lane
/// schedule. Scalar twin of [`weight_moments_avx2`] /
/// [`weight_moments_neon`].
#[inline]
#[cfg_attr(any(), muaa::hot)]
pub fn weight_moments_scalar(weights: &[f64], xs: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(weights.len(), xs.len());
    let n = weights.len();
    let chunks = n / LANES;
    let mut lw = [0.0f64; LANES];
    let mut lwx = [0.0f64; LANES];
    let mut lwxx = [0.0f64; LANES];
    for k in 0..chunks {
        let base = k * LANES;
        for l in 0..LANES {
            let w = weights[base + l];
            let x = xs[base + l];
            let wx = w * x;
            lw[l] += w;
            lwx[l] += wx;
            lwxx[l] += wx * x;
        }
    }
    let mut sw = (lw[0] + lw[1]) + (lw[2] + lw[3]);
    let mut swx = (lwx[0] + lwx[1]) + (lwx[2] + lwx[3]);
    let mut swxx = (lwxx[0] + lwxx[1]) + (lwxx[2] + lwxx[3]);
    for t in chunks * LANES..n {
        let w = weights[t];
        let x = xs[t];
        let wx = w * x;
        sw += w;
        swx += wx;
        swxx += wx * x;
    }
    (sw, swx, swxx)
}

/// The pre-§16 strictly sequential spelling of the pair-side loop, kept
/// as the benchmark baseline (`simd_report`'s "scalar-sequential"
/// column) and for the order-change regression tests. **Not**
/// bit-compatible with the canonical schedule once `len > LANES` — it
/// sums in plain index order — though both agree to ~1e-12 relative
/// accuracy and exactly when `len ≤ LANES` (chunk count 0 makes the
/// canonical schedule degenerate to this one).
pub fn pair_moments_sequential(weights: &[f64], xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(weights.len(), xs.len());
    debug_assert_eq!(weights.len(), ys.len());
    let (mut swy, mut swyy, mut swxy) = (0.0, 0.0, 0.0);
    for t in 0..ys.len() {
        let w = weights[t];
        let y = ys[t];
        swy += w * y;
        swyy += w * y * y;
        swxy += w * xs[t] * y;
    }
    (swy, swyy, swxy)
}

/// Sequential twin of [`pair_moments_sequential`] for the customer-side
/// loop; same role, same caveats.
pub fn weight_moments_sequential(weights: &[f64], xs: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(weights.len(), xs.len());
    let (mut sw, mut swx, mut swxx) = (0.0, 0.0, 0.0);
    for t in 0..weights.len() {
        let w = weights[t];
        let x = xs[t];
        sw += w;
        swx += w * x;
        swxx += w * x * x;
    }
    (sw, swx, swxx)
}

// ---------------------------------------------------------------------
// AVX2 kernels (x86_64, `simd` feature)
// ---------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
// SAFETY: requires AVX2 at runtime. The only callers are the
// `*_avx2_entry` wrappers, reachable solely through the `AVX2` kernel
// table, which `resolve` installs after
// `is_x86_feature_detected!("avx2")` returned true on this host. Slice
// accesses stay in bounds: the loads read `base .. base + LANES` with
// `base + LANES ≤ chunks·LANES ≤ n`, and all three slices have equal
// length (debug-asserted, guaranteed by the utility-layer callers).
unsafe fn pair_moments_avx2(weights: &[f64], xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_loadu_pd,
        _mm256_mul_pd, _mm256_setzero_pd, _mm_cvtsd_f64, _mm_unpackhi_pd,
    };
    debug_assert_eq!(weights.len(), xs.len());
    debug_assert_eq!(weights.len(), ys.len());
    let n = ys.len();
    let chunks = n / LANES;
    let (wp, xp, yp) = (weights.as_ptr(), xs.as_ptr(), ys.as_ptr());
    let mut vy = _mm256_setzero_pd();
    let mut vyy = _mm256_setzero_pd();
    let mut vxy = _mm256_setzero_pd();
    for k in 0..chunks {
        let base = k * LANES;
        let w = _mm256_loadu_pd(wp.add(base));
        let x = _mm256_loadu_pd(xp.add(base));
        let y = _mm256_loadu_pd(yp.add(base));
        // Separate mul + add per lane — never FMA — so each lane's add
        // chain rounds exactly like `pair_moments_scalar`'s.
        let wy = _mm256_mul_pd(w, y);
        vy = _mm256_add_pd(vy, wy);
        vyy = _mm256_add_pd(vyy, _mm256_mul_pd(wy, y));
        vxy = _mm256_add_pd(vxy, _mm256_mul_pd(_mm256_mul_pd(w, x), y));
    }
    // Canonical horizontal reduction: (l0 + l1) + (l2 + l3), spelled
    // with explicit scalar extracts so the add order is visible.
    let (ylo, yhi) = (_mm256_castpd256_pd128(vy), _mm256_extractf128_pd::<1>(vy));
    let mut swy = (_mm_cvtsd_f64(ylo) + _mm_cvtsd_f64(_mm_unpackhi_pd(ylo, ylo)))
        + (_mm_cvtsd_f64(yhi) + _mm_cvtsd_f64(_mm_unpackhi_pd(yhi, yhi)));
    let (yylo, yyhi) = (_mm256_castpd256_pd128(vyy), _mm256_extractf128_pd::<1>(vyy));
    let mut swyy = (_mm_cvtsd_f64(yylo) + _mm_cvtsd_f64(_mm_unpackhi_pd(yylo, yylo)))
        + (_mm_cvtsd_f64(yyhi) + _mm_cvtsd_f64(_mm_unpackhi_pd(yyhi, yyhi)));
    let (xylo, xyhi) = (_mm256_castpd256_pd128(vxy), _mm256_extractf128_pd::<1>(vxy));
    let mut swxy = (_mm_cvtsd_f64(xylo) + _mm_cvtsd_f64(_mm_unpackhi_pd(xylo, xylo)))
        + (_mm_cvtsd_f64(xyhi) + _mm_cvtsd_f64(_mm_unpackhi_pd(xyhi, xyhi)));
    for t in chunks * LANES..n {
        let w = weights[t];
        let y = ys[t];
        let wy = w * y;
        swy += wy;
        swyy += wy * y;
        swxy += (w * xs[t]) * y;
    }
    (swy, swyy, swxy)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
// SAFETY: requires AVX2 at runtime; reachable only through the `AVX2`
// kernel table installed by `resolve` after
// `is_x86_feature_detected!("avx2")`. Bounds as in `pair_moments_avx2`:
// loads cover `base .. base + LANES ≤ n` on equal-length slices.
unsafe fn weight_moments_avx2(weights: &[f64], xs: &[f64]) -> (f64, f64, f64) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_loadu_pd,
        _mm256_mul_pd, _mm256_setzero_pd, _mm_cvtsd_f64, _mm_unpackhi_pd,
    };
    debug_assert_eq!(weights.len(), xs.len());
    let n = weights.len();
    let chunks = n / LANES;
    let (wp, xp) = (weights.as_ptr(), xs.as_ptr());
    let mut vw = _mm256_setzero_pd();
    let mut vwx = _mm256_setzero_pd();
    let mut vwxx = _mm256_setzero_pd();
    for k in 0..chunks {
        let base = k * LANES;
        let w = _mm256_loadu_pd(wp.add(base));
        let x = _mm256_loadu_pd(xp.add(base));
        let wx = _mm256_mul_pd(w, x);
        vw = _mm256_add_pd(vw, w);
        vwx = _mm256_add_pd(vwx, wx);
        vwxx = _mm256_add_pd(vwxx, _mm256_mul_pd(wx, x));
    }
    // Canonical (l0 + l1) + (l2 + l3) reduction, as in the pair kernel.
    let (wlo, whi) = (_mm256_castpd256_pd128(vw), _mm256_extractf128_pd::<1>(vw));
    let mut sw = (_mm_cvtsd_f64(wlo) + _mm_cvtsd_f64(_mm_unpackhi_pd(wlo, wlo)))
        + (_mm_cvtsd_f64(whi) + _mm_cvtsd_f64(_mm_unpackhi_pd(whi, whi)));
    let (xlo, xhi) = (_mm256_castpd256_pd128(vwx), _mm256_extractf128_pd::<1>(vwx));
    let mut swx = (_mm_cvtsd_f64(xlo) + _mm_cvtsd_f64(_mm_unpackhi_pd(xlo, xlo)))
        + (_mm_cvtsd_f64(xhi) + _mm_cvtsd_f64(_mm_unpackhi_pd(xhi, xhi)));
    let (xxlo, xxhi) = (_mm256_castpd256_pd128(vwxx), _mm256_extractf128_pd::<1>(vwxx));
    let mut swxx = (_mm_cvtsd_f64(xxlo) + _mm_cvtsd_f64(_mm_unpackhi_pd(xxlo, xxlo)))
        + (_mm_cvtsd_f64(xxhi) + _mm_cvtsd_f64(_mm_unpackhi_pd(xxhi, xxhi)));
    for t in chunks * LANES..n {
        let w = weights[t];
        let x = xs[t];
        let wx = w * x;
        sw += w;
        swx += wx;
        swxx += wx * x;
    }
    (sw, swx, swxx)
}

/// Safe fn-pointer entry for [`pair_moments_avx2`].
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
#[cfg_attr(any(), muaa::hot)]
fn pair_moments_avx2_entry(weights: &[f64], xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    // SAFETY: this entry is reachable only through the `AVX2` kernel
    // table, which `resolve` installs after
    // `is_x86_feature_detected!("avx2")` returned true.
    unsafe { pair_moments_avx2(weights, xs, ys) }
}

/// Safe fn-pointer entry for [`weight_moments_avx2`].
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
#[cfg_attr(any(), muaa::hot)]
fn weight_moments_avx2_entry(weights: &[f64], xs: &[f64]) -> (f64, f64, f64) {
    // SAFETY: reachable only through the `AVX2` kernel table installed
    // by `resolve` after `is_x86_feature_detected!("avx2")`.
    unsafe { weight_moments_avx2(weights, xs) }
}

// ---------------------------------------------------------------------
// NEON kernels (aarch64, `simd` feature)
// ---------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[target_feature(enable = "neon")]
// SAFETY: NEON is a baseline feature of every `aarch64` target (the
// `target_arch = "aarch64"` cfg is the dispatch guard — no runtime
// probe exists or is needed). Loads read `base .. base + LANES ≤ n` on
// equal-length slices, as debug-asserted.
unsafe fn pair_moments_neon(weights: &[f64], xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    use std::arch::aarch64::{vaddq_f64, vaddvq_f64, vdupq_n_f64, vld1q_f64, vmulq_f64};
    debug_assert_eq!(weights.len(), xs.len());
    debug_assert_eq!(weights.len(), ys.len());
    let n = ys.len();
    let chunks = n / LANES;
    let (wp, xp, yp) = (weights.as_ptr(), xs.as_ptr(), ys.as_ptr());
    // Lanes 0/1 and 2/3 of the canonical schedule live in separate
    // 2-wide registers; `vaddvq_f64` then yields exactly (l0 + l1) and
    // (l2 + l3) for the canonical reduction.
    let mut vy01 = vdupq_n_f64(0.0);
    let mut vy23 = vdupq_n_f64(0.0);
    let mut vyy01 = vdupq_n_f64(0.0);
    let mut vyy23 = vdupq_n_f64(0.0);
    let mut vxy01 = vdupq_n_f64(0.0);
    let mut vxy23 = vdupq_n_f64(0.0);
    for k in 0..chunks {
        let base = k * LANES;
        let w01 = vld1q_f64(wp.add(base));
        let w23 = vld1q_f64(wp.add(base + 2));
        let x01 = vld1q_f64(xp.add(base));
        let x23 = vld1q_f64(xp.add(base + 2));
        let y01 = vld1q_f64(yp.add(base));
        let y23 = vld1q_f64(yp.add(base + 2));
        // Separate mul + add — never FMA (vfmaq) — matching the scalar
        // twin's rounding per lane.
        let wy01 = vmulq_f64(w01, y01);
        let wy23 = vmulq_f64(w23, y23);
        vy01 = vaddq_f64(vy01, wy01);
        vy23 = vaddq_f64(vy23, wy23);
        vyy01 = vaddq_f64(vyy01, vmulq_f64(wy01, y01));
        vyy23 = vaddq_f64(vyy23, vmulq_f64(wy23, y23));
        vxy01 = vaddq_f64(vxy01, vmulq_f64(vmulq_f64(w01, x01), y01));
        vxy23 = vaddq_f64(vxy23, vmulq_f64(vmulq_f64(w23, x23), y23));
    }
    let mut swy = vaddvq_f64(vy01) + vaddvq_f64(vy23);
    let mut swyy = vaddvq_f64(vyy01) + vaddvq_f64(vyy23);
    let mut swxy = vaddvq_f64(vxy01) + vaddvq_f64(vxy23);
    for t in chunks * LANES..n {
        let w = weights[t];
        let y = ys[t];
        let wy = w * y;
        swy += wy;
        swyy += wy * y;
        swxy += (w * xs[t]) * y;
    }
    (swy, swyy, swxy)
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[target_feature(enable = "neon")]
// SAFETY: NEON is baseline on `aarch64` (the `target_arch` cfg is the
// dispatch guard). Bounds as in `pair_moments_neon`.
unsafe fn weight_moments_neon(weights: &[f64], xs: &[f64]) -> (f64, f64, f64) {
    use std::arch::aarch64::{vaddq_f64, vaddvq_f64, vdupq_n_f64, vld1q_f64, vmulq_f64};
    debug_assert_eq!(weights.len(), xs.len());
    let n = weights.len();
    let chunks = n / LANES;
    let (wp, xp) = (weights.as_ptr(), xs.as_ptr());
    let mut vw01 = vdupq_n_f64(0.0);
    let mut vw23 = vdupq_n_f64(0.0);
    let mut vwx01 = vdupq_n_f64(0.0);
    let mut vwx23 = vdupq_n_f64(0.0);
    let mut vwxx01 = vdupq_n_f64(0.0);
    let mut vwxx23 = vdupq_n_f64(0.0);
    for k in 0..chunks {
        let base = k * LANES;
        let w01 = vld1q_f64(wp.add(base));
        let w23 = vld1q_f64(wp.add(base + 2));
        let x01 = vld1q_f64(xp.add(base));
        let x23 = vld1q_f64(xp.add(base + 2));
        let wx01 = vmulq_f64(w01, x01);
        let wx23 = vmulq_f64(w23, x23);
        vw01 = vaddq_f64(vw01, w01);
        vw23 = vaddq_f64(vw23, w23);
        vwx01 = vaddq_f64(vwx01, wx01);
        vwx23 = vaddq_f64(vwx23, wx23);
        vwxx01 = vaddq_f64(vwxx01, vmulq_f64(wx01, x01));
        vwxx23 = vaddq_f64(vwxx23, vmulq_f64(wx23, x23));
    }
    let mut sw = vaddvq_f64(vw01) + vaddvq_f64(vw23);
    let mut swx = vaddvq_f64(vwx01) + vaddvq_f64(vwx23);
    let mut swxx = vaddvq_f64(vwxx01) + vaddvq_f64(vwxx23);
    for t in chunks * LANES..n {
        let w = weights[t];
        let x = xs[t];
        let wx = w * x;
        sw += w;
        swx += wx;
        swxx += wx * x;
    }
    (sw, swx, swxx)
}

/// Safe fn-pointer entry for [`pair_moments_neon`].
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[inline]
#[cfg_attr(any(), muaa::hot)]
fn pair_moments_neon_entry(weights: &[f64], xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    // SAFETY: NEON is baseline on every `aarch64` target; the
    // `target_arch = "aarch64"` cfg on this entry is the dispatch guard.
    unsafe { pair_moments_neon(weights, xs, ys) }
}

/// Safe fn-pointer entry for [`weight_moments_neon`].
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[inline]
#[cfg_attr(any(), muaa::hot)]
fn weight_moments_neon_entry(weights: &[f64], xs: &[f64]) -> (f64, f64, f64) {
    // SAFETY: NEON is baseline on every `aarch64` target; the
    // `target_arch = "aarch64"` cfg on this entry is the dispatch guard.
    unsafe { weight_moments_neon(weights, xs) }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

static SCALAR: Kernels = Kernels {
    name: "scalar",
    simd: false,
    pair_moments: pair_moments_scalar,
    weight_moments: weight_moments_scalar,
};

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
static AVX2: Kernels = Kernels {
    name: "avx2",
    simd: true,
    pair_moments: pair_moments_avx2_entry,
    weight_moments: weight_moments_avx2_entry,
};

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
static NEON: Kernels = Kernels {
    name: "neon",
    simd: true,
    pair_moments: pair_moments_neon_entry,
    weight_moments: weight_moments_neon_entry,
};

/// Process-wide scalar override for tests and benches — layered over
/// the resolved dispatch, never part of it.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

static RESOLVED: OnceLock<&'static Kernels> = OnceLock::new();

/// Probe for the best SIMD table this build + host supports.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn simd_probe() -> &'static Kernels {
    if std::arch::is_x86_feature_detected!("avx2") {
        &AVX2
    } else {
        &SCALAR
    }
}

/// NEON is a baseline feature of the `aarch64` target — compile-time
/// dispatch, no runtime probe.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
fn simd_probe() -> &'static Kernels {
    &NEON
}

/// No `simd` feature, or an architecture without kernels here: the
/// canonical scalar table is the only choice.
#[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn simd_probe() -> &'static Kernels {
    &SCALAR
}

fn resolve() -> &'static Kernels {
    let forced = std::env::var_os("MUAA_FORCE_SCALAR")
        .is_some_and(|v| !v.is_empty() && v != "0");
    if forced {
        &SCALAR
    } else {
        simd_probe()
    }
}

/// The kernel table this process resolved to, computed exactly once on
/// first use (env check + CPU probe inside a [`OnceLock`], with
/// sanitizer accounting suspended so first use inside a strict
/// [`crate::sanitize::AllocGuard`] region stays clean). Ignores the
/// [`force_scalar`] override — this is the *dispatch decision*, stable
/// for the life of the process.
pub fn resolved() -> &'static Kernels {
    RESOLVED.get_or_init(|| crate::sanitize::suspended(resolve))
}

/// The kernel table for the current call: [`resolved`] unless the
/// [`force_scalar`] override is on, in which case the canonical scalar
/// table. Cheap enough for per-call use (one relaxed atomic load plus a
/// `OnceLock` read) — hot paths may still hoist it out of inner loops.
#[inline]
#[cfg_attr(any(), muaa::hot)]
pub fn kernels() -> &'static Kernels {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        &SCALAR
    } else {
        resolved()
    }
}

/// Test/bench hook: route all subsequent [`kernels`] calls — on every
/// thread — to the canonical scalar table (`true`) or back to the
/// resolved dispatch (`false`). Process-wide so parallel solver runs
/// under [`crate::par::with_threads`] are covered; tests that toggle it
/// must serialize against tests asserting the SIMD table is active
/// (keep both inside one `#[test]`, or in separate test binaries).
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Run `f` with the scalar override on, restoring the previous state
/// after — the byte-diff harness pattern: `with_forced_scalar(run)`
/// versus `run()` must agree bit-for-bit.
pub fn with_forced_scalar<R>(f: impl FnOnce() -> R) -> R {
    let prev = FORCE_SCALAR.swap(true, Ordering::Relaxed);
    let out = f();
    FORCE_SCALAR.store(prev, Ordering::Relaxed);
    out
}

/// `true` iff this process resolved to an explicit-SIMD table (AVX2 or
/// NEON). Honest by construction: scalar fallbacks — feature off, no
/// AVX2, `MUAA_FORCE_SCALAR` — all report `false`.
pub fn simd_available() -> bool {
    resolved().simd
}

/// Dispatched pair-side moments `(swy, swyy, swxy)`; see [`Kernels`].
#[inline]
#[cfg_attr(any(), muaa::hot)]
pub fn pair_moments(weights: &[f64], xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    (kernels().pair_moments)(weights, xs, ys)
}

/// Dispatched customer-side moments `(sw, swx, swxx)`; see [`Kernels`].
#[inline]
#[cfg_attr(any(), muaa::hot)]
pub fn weight_moments(weights: &[f64], xs: &[f64]) -> (f64, f64, f64) {
    (kernels().weight_moments)(weights, xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random data in `[0, 1]` (no `rand` needed).
    fn data(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn dispatched_kernels_match_scalar_bit_for_bit_at_all_widths() {
        // Widths 0..=65 cover empty input, tail-only, exact multiples of
        // LANES and every ragged-tail residue. On an AVX2/NEON host this
        // is the scalar↔SIMD bit-identity proof; on others it pins the
        // dispatcher to the scalar table.
        for n in 0..=65usize {
            let w = data(n, 1 + n as u64);
            let x = data(n, 1000 + n as u64);
            let y = data(n, 2000 + n as u64);
            let (a0, a1, a2) = pair_moments_scalar(&w, &x, &y);
            let (b0, b1, b2) = pair_moments(&w, &x, &y);
            assert_eq!(
                (a0.to_bits(), a1.to_bits(), a2.to_bits()),
                (b0.to_bits(), b1.to_bits(), b2.to_bits()),
                "pair_moments diverged from scalar at width {n} (kernel {})",
                kernels().name
            );
            let (c0, c1, c2) = weight_moments_scalar(&w, &x);
            let (d0, d1, d2) = weight_moments(&w, &x);
            assert_eq!(
                (c0.to_bits(), c1.to_bits(), c2.to_bits()),
                (d0.to_bits(), d1.to_bits(), d2.to_bits()),
                "weight_moments diverged from scalar at width {n} (kernel {})",
                kernels().name
            );
        }
    }

    #[test]
    fn resolved_dispatch_pointer_is_stable_across_calls() {
        let first = resolved();
        for _ in 0..100 {
            assert!(std::ptr::eq(first, resolved()), "dispatch must resolve once");
        }
        // The override never perturbs the resolved decision.
        with_forced_scalar(|| {
            assert!(std::ptr::eq(first, resolved()));
            assert_eq!(kernels().name, "scalar");
        });
    }

    #[test]
    fn tail_only_widths_degenerate_to_the_sequential_order() {
        // With fewer than LANES elements there are zero full chunks, so
        // the canonical schedule *is* the sequential loop — bitwise.
        for n in 0..LANES {
            let w = data(n, 7);
            let x = data(n, 8);
            let y = data(n, 9);
            let a = pair_moments_scalar(&w, &x, &y);
            let b = pair_moments_sequential(&w, &x, &y);
            assert_eq!(
                (a.0.to_bits(), a.1.to_bits(), a.2.to_bits()),
                (b.0.to_bits(), b.1.to_bits(), b.2.to_bits()),
                "tail-only width {n} must match the sequential spelling"
            );
            let c = weight_moments_scalar(&w, &x);
            let d = weight_moments_sequential(&w, &x);
            assert_eq!(
                (c.0.to_bits(), c.1.to_bits(), c.2.to_bits()),
                (d.0.to_bits(), d.1.to_bits(), d.2.to_bits())
            );
        }
    }

    #[test]
    fn chunked_and_sequential_orders_agree_numerically() {
        // The canonical reorder is a pure reassociation: identical terms,
        // different add order — so the spellings agree to ~1e-12 even
        // where they are not bitwise equal.
        for n in [5usize, 16, 33, 64, 257] {
            let w = data(n, 11);
            let x = data(n, 12);
            let y = data(n, 13);
            let a = pair_moments_scalar(&w, &x, &y);
            let b = pair_moments_sequential(&w, &x, &y);
            for (ca, cb) in [(a.0, b.0), (a.1, b.1), (a.2, b.2)] {
                assert!(
                    (ca - cb).abs() <= 1e-12 * cb.abs().max(1.0),
                    "reassociation drifted at width {n}: {ca} vs {cb}"
                );
            }
        }
    }

    #[test]
    fn forced_scalar_restores_previous_state() {
        let before = kernels().name;
        let inner = with_forced_scalar(|| kernels().name);
        assert_eq!(inner, "scalar");
        assert_eq!(kernels().name, before);
    }

    #[test]
    fn simd_available_reports_the_resolved_table() {
        assert_eq!(simd_available(), resolved().simd);
        // The honest-flag contract: name and flag agree.
        assert_eq!(resolved().simd, resolved().name != "scalar");
    }

    #[test]
    fn moments_of_empty_input_are_zero() {
        assert_eq!(pair_moments(&[], &[], &[]), (0.0, 0.0, 0.0));
        assert_eq!(weight_moments(&[], &[]), (0.0, 0.0, 0.0));
    }
}
