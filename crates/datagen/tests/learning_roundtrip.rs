//! Learning round-trip: estimate the activity profile from the
//! simulator's own check-in log and verify it recovers the diurnal
//! structure the simulator generated with — the full "learn α_x(φ)
//! from history" loop a deployed broker would run.

use muaa_core::Timestamp;
use muaa_datagen::{estimate_activity, ActivityEstimation, FoursquareConfig, FoursquareSim};

#[test]
fn estimated_activity_recovers_diurnal_structure() {
    let sim = FoursquareSim::generate(&FoursquareConfig {
        checkins: 6_000,
        venues: 300,
        users: 200,
        ..Default::default()
    });
    assert_eq!(sim.checkin_log.len(), sim.instance.num_customers());

    let learned = estimate_activity(
        &sim.taxonomy,
        sim.checkin_log.iter().copied(),
        ActivityEstimation::default(),
    );

    let tax = &sim.taxonomy;
    // Nightlife should be learned as a night category; professional
    // places as a daytime one — matching the generating templates.
    let nightlife = tax.by_name("Nightlife Spot").unwrap();
    let night = learned.level(nightlife.index(), Timestamp::from_hours(22.5));
    let morning = learned.level(nightlife.index(), Timestamp::from_hours(9.5));
    assert!(
        night > morning,
        "nightlife: night {night} vs morning {morning}"
    );

    let office = tax.by_name("Office").unwrap();
    let work = learned.level(office.index(), Timestamp::from_hours(11.0));
    let late = learned.level(office.index(), Timestamp::from_hours(23.5));
    assert!(work > late, "office: work {work} vs late {late}");
}

#[test]
fn estimated_profile_correlates_with_generating_templates() {
    let sim = FoursquareSim::generate(&FoursquareConfig {
        checkins: 8_000,
        venues: 300,
        users: 200,
        ..Default::default()
    });
    let learned = estimate_activity(
        &sim.taxonomy,
        sim.checkin_log.iter().copied(),
        ActivityEstimation::default(),
    );
    let truth = sim.model.activity();

    // Average Pearson correlation between learned and generating
    // hourly curves over the leaf categories with enough data.
    let mut correlations = Vec::new();
    for tag in sim.taxonomy.leaves() {
        let a: Vec<f64> = (0..24)
            .map(|h| learned.level(tag.index(), Timestamp::from_hours(h as f64)))
            .collect();
        let b: Vec<f64> = (0..24)
            .map(|h| truth.level(tag.index(), Timestamp::from_hours(h as f64)))
            .collect();
        // Skip unobserved tags (learned curve is flat 1.0).
        if a.iter().all(|&x| (x - 1.0).abs() < 1e-9) {
            continue;
        }
        let corr = pearson(&a, &b);
        if corr.is_finite() {
            correlations.push(corr);
        }
    }
    assert!(correlations.len() > 10, "too few observed categories");
    let mean = correlations.iter().sum::<f64>() / correlations.len() as f64;
    assert!(mean > 0.5, "mean learned-vs-truth correlation {mean}");
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cab = 0.0;
    let mut caa = 0.0;
    let mut cbb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cab += (x - ma) * (y - mb);
        caa += (x - ma) * (x - ma);
        cbb += (y - mb) * (y - mb);
    }
    cab / (caa * cbb).sqrt()
}
