//! Constant-memory streaming workload generator (DESIGN.md §15).
//!
//! The tile-sharded engine targets million-customer instances; holding
//! a second copy of such a workload inside the *generator* (the
//! `Vec`-building style of [`crate::generate_synthetic`]) doubles peak
//! memory for no benefit. [`StreamConfig`] instead yields customers and
//! vendors as iterators: record `k` is produced by a [`SplitMix64`]
//! stream re-seeded from `(seed, stream tag, k)`, so
//!
//! * memory is `O(1)` in the instance size (each record is built and
//!   handed off independently),
//! * the stream is *randomly addressable* — record `k` never depends on
//!   records `0..k`, so consumers can skip, resume, or shard the stream
//!   without replaying it, and
//! * the bits are identical on every platform and in every build: the
//!   generator uses no `rand` (the offline build stubs that crate) and
//!   no transcendental functions (the clamped pseudo-normal is an
//!   Irwin–Hall sum of 12 uniforms — additions only).
//!
//! The smoke tests pin the first records' exact bit patterns; any
//! change to the record recipe is a workload-breaking change and must
//! bump the pinned constants deliberately.

use crate::adtypes;
use muaa_core::{
    AdType, Customer, InstanceBuilder, Money, Point, ProblemInstance, TagVector, Timestamp, Vendor,
};

/// The splitmix64 generator (Steele, Lea & Flood 2014): a tiny,
/// full-period, jump-free stream used here because record addressing
/// needs cheap independent re-seeding, which `SmallRng` does not
/// guarantee across versions.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed a stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with full 53-bit mantissa resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Pseudo-normal `N(0, 1)` via the Irwin–Hall sum of 12 uniforms —
    /// additions only, so the bits never depend on a libm.
    pub fn pseudo_normal(&mut self) -> f64 {
        let mut acc = 0.0f64;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        acc - 6.0
    }
}

/// Mix a stream tag and record index into a per-record seed. The
/// constants are splitmix64's own, applied once, so adjacent records
/// land in unrelated regions of the state space.
fn record_seed(seed: u64, tag: u64, index: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ index;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

const CUSTOMER_TAG: u64 = 0xC057;
const VENDOR_TAG: u64 = 0x7E4D;

/// Configuration of the streaming generator. The default is the
/// scale-out fixture the sharding benchmarks use: one million customers
/// against ten thousand vendors on the unit square, with vendor radii
/// sized so an average disc holds a few hundred customers.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Number of customers `m`.
    pub customers: usize,
    /// Number of vendors `n`.
    pub vendors: usize,
    /// Vendor budget range `[B⁻, B⁺]` in dollars.
    pub budget: (f64, f64),
    /// Vendor radius range `[r⁻, r⁺]`.
    pub radius: (f64, f64),
    /// Customer capacity range (rounded to integers ≥ 1).
    pub capacity: (f64, f64),
    /// View probability range `[p⁻, p⁺]`.
    pub view_probability: (f64, f64),
    /// Ad types (defaults to [`adtypes::adwords_like`]).
    pub ad_types: Vec<AdType>,
    /// Tag-universe size for the two-cluster tag vectors.
    pub tags: usize,
    /// Stream seed — same seed, same records, forever.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            customers: 1_000_000,
            vendors: 10_000,
            budget: (10.0, 20.0),
            radius: (0.01, 0.02),
            capacity: (1.0, 5.0),
            view_probability: (0.1, 0.5),
            ad_types: adtypes::adwords_like(),
            tags: 8,
            seed: 0x5EED_CAFE,
        }
    }
}

impl StreamConfig {
    /// A proportionally downsized fixture with the same per-record
    /// recipe — the CI smoke and offline-build configurations.
    pub fn downsized(customers: usize, vendors: usize) -> Self {
        StreamConfig {
            customers,
            vendors,
            // Keep roughly the same expected disc population as the
            // full fixture by widening radii as vendors thin out.
            radius: {
                let scale = (10_000.0 / vendors.max(1) as f64).sqrt();
                (0.01 * scale, 0.02 * scale)
            },
            ..Default::default()
        }
    }

    /// Build customer `i` of the stream (randomly addressable).
    pub fn customer(&self, i: usize) -> Customer {
        let mut rng = SplitMix64::new(record_seed(self.seed, CUSTOMER_TAG, i as u64));
        // Pseudo-Gaussian around the centre, clamped to the unit
        // square — the paper's §V-A customer geography.
        let location = Point::new(
            0.5 + rng.pseudo_normal(),
            0.5 + rng.pseudo_normal(),
        )
        .clamp_to_box(0.0, 1.0);
        let (c_lo, c_hi) = self.capacity;
        let (p_lo, p_hi) = self.view_probability;
        Customer {
            location,
            capacity: (rng.range(c_lo, c_hi).round() as u32).max(1),
            view_probability: rng.range(p_lo, p_hi).clamp(0.0, 1.0),
            interests: self.tag_vector(&mut rng),
            // Arrival order doubles as the timestamp, as in the paper.
            arrival: Timestamp::from_hours(24.0 * i as f64 / self.customers.max(1) as f64),
        }
    }

    /// Build vendor `j` of the stream (randomly addressable).
    pub fn vendor(&self, j: usize) -> Vendor {
        let mut rng = SplitMix64::new(record_seed(self.seed, VENDOR_TAG, j as u64));
        let location = Point::new(rng.next_f64(), rng.next_f64());
        let (r_lo, r_hi) = self.radius;
        let (b_lo, b_hi) = self.budget;
        Vendor {
            location,
            radius: rng.range(r_lo, r_hi).max(0.0),
            budget: Money::from_dollars(rng.range(b_lo, b_hi)),
            tags: self.tag_vector(&mut rng),
        }
    }

    /// The planted two-cluster tag recipe of
    /// [`crate::generate_synthetic`], re-expressed over [`SplitMix64`].
    fn tag_vector(&self, rng: &mut SplitMix64) -> TagVector {
        let lean = rng.next_f64();
        let scores: Vec<f64> = (0..self.tags)
            .map(|k| {
                let cluster_boost = if k < self.tags / 2 { lean } else { 1.0 - lean };
                (0.15 + 0.7 * cluster_boost * rng.next_f64()).clamp(0.0, 1.0)
            })
            .collect();
        TagVector::new_unchecked(scores)
    }

    /// Stream every customer in arrival order. Constant memory: each
    /// item is built on demand and owned by the caller.
    pub fn customers(&self) -> impl Iterator<Item = Customer> + '_ {
        (0..self.customers).map(move |i| self.customer(i))
    }

    /// Stream every vendor. Constant memory, randomly addressable.
    pub fn vendors(&self) -> impl Iterator<Item = Vendor> + '_ {
        (0..self.vendors).map(move |j| self.vendor(j))
    }
}

/// Materialise the streamed workload into a [`ProblemInstance`] — the
/// single point where `O(m + n)` memory is actually committed.
pub fn generate_streamed(config: &StreamConfig) -> ProblemInstance {
    InstanceBuilder::new()
        .customers(config.customers())
        .vendors(config.vendors())
        .ad_types(config.ad_types.iter().cloned())
        .build()
        .expect("streamed generator produces valid instances")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fold a record's payload into one u64 so the pinned constants
    /// below stay compact. Any bit flip anywhere flips the fold.
    fn fold_customer(c: &Customer) -> u64 {
        let mut h = c.location.x.to_bits() ^ c.location.y.to_bits().rotate_left(17);
        h ^= (c.capacity as u64).rotate_left(34);
        h ^= c.view_probability.to_bits().rotate_left(51);
        for (k, s) in c.interests.as_slice().iter().enumerate() {
            h ^= s.to_bits().rotate_left((7 * k as u32) % 64);
        }
        h ^ c.arrival.hours().to_bits()
    }

    fn fold_vendor(v: &Vendor) -> u64 {
        let mut h = v.location.x.to_bits() ^ v.location.y.to_bits().rotate_left(17);
        h ^= v.radius.to_bits().rotate_left(34);
        h ^= v.budget.as_dollars().to_bits().rotate_left(51);
        for (k, s) in v.tags.as_slice().iter().enumerate() {
            h ^= s.to_bits().rotate_left((7 * k as u32) % 64);
        }
        h
    }

    /// The workload contract: the first records of the default stream,
    /// bit for bit. These constants must only ever change together with
    /// a deliberate fixture-version bump.
    #[test]
    fn pins_first_records_bit_for_bit() {
        let cfg = StreamConfig::default();
        let c: Vec<u64> = (0..4).map(|i| fold_customer(&cfg.customer(i))).collect();
        let v: Vec<u64> = (0..4).map(|j| fold_vendor(&cfg.vendor(j))).collect();
        assert_eq!(
            c,
            [
                0x606A_94A6_16E0_B6AA,
                0x4270_F801_3400_D821,
                0x9018_3E68_9455_0B8E,
                0x03AE_B2DF_5E96_6716,
            ],
            "customer stream drifted: {c:#018X?}"
        );
        assert_eq!(
            v,
            [
                0xE25E_A7A9_60D3_EAB7,
                0xE98B_4244_B4DC_F298,
                0xF16A_C3A6_7BDB_7877,
                0x51C6_0527_5B02_EA19,
            ],
            "vendor stream drifted: {v:#018X?}"
        );
    }

    /// Random addressability: record `k` from a fresh config equals
    /// record `k` reached by iteration, and skipping records never
    /// shifts the stream.
    #[test]
    fn records_are_randomly_addressable() {
        let cfg = StreamConfig::downsized(100, 10);
        let iterated: Vec<Customer> = cfg.customers().collect();
        for k in [0usize, 7, 41, 99] {
            let direct = cfg.customer(k);
            assert_eq!(fold_customer(&direct), fold_customer(&iterated[k]));
        }
        let direct_v = cfg.vendor(9);
        let last_v = cfg.vendors().last().unwrap();
        assert_eq!(fold_vendor(&direct_v), fold_vendor(&last_v));
    }

    #[test]
    fn downsized_stream_builds_valid_instances() {
        let cfg = StreamConfig::downsized(300, 12);
        let inst = generate_streamed(&cfg);
        assert_eq!(inst.num_customers(), 300);
        assert_eq!(inst.num_vendors(), 12);
        assert_eq!(inst.num_ad_types(), 3);
        for c in inst.customers() {
            assert!((1..=5).contains(&c.capacity));
            assert!((0.1..=0.5).contains(&c.view_probability));
            assert!((0.0..=1.0).contains(&c.location.x));
            assert!((0.0..=1.0).contains(&c.location.y));
        }
        for v in inst.vendors() {
            assert!(v.radius > 0.0);
            let b = v.budget.as_dollars();
            assert!((10.0..=20.0).contains(&b), "budget {b}");
        }
    }

    #[test]
    fn seeds_separate_streams() {
        let a = StreamConfig::downsized(50, 5);
        let mut b = StreamConfig::downsized(50, 5);
        b.seed ^= 1;
        let drifted = (0..50).any(|i| {
            fold_customer(&a.customer(i)) != fold_customer(&b.customer(i))
        });
        assert!(drifted, "seed change must move the stream");
    }

    #[test]
    fn arrivals_are_nondecreasing_and_scale_free() {
        let cfg = StreamConfig::downsized(64, 4);
        let hours: Vec<f64> = cfg.customers().map(|c| c.arrival.hours()).collect();
        assert!(hours.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(hours[0], 0.0);
        assert!(hours[63] < 24.0);
    }
}
