//! # muaa-datagen
//!
//! Workload generators for the MUAA experiments (paper §V-A).
//!
//! * [`SyntheticConfig`] / [`generate_synthetic`] — the paper's
//!   synthetic data: customer locations Gaussian `N(0.5, 1²)` clamped
//!   to `[0,1]²`, vendor locations uniform, and all per-entity
//!   parameters (budgets `B_j`, radii `r_j`, capacities `a_i`, view
//!   probabilities `p_i`) drawn from truncated Gaussians over
//!   configurable ranges exactly as §V-A describes.
//! * [`FoursquareSim`] — the substitute for the proprietary Foursquare
//!   Tokyo check-in dataset (see `DESIGN.md` §5): a check-in simulator
//!   over the [`muaa_taxonomy::foursquare_like`] category tree with
//!   Zipf venue popularity, clustered venue geography, per-category
//!   diurnal activity and per-user category preferences. Customers are
//!   materialised one per check-in and vendors one per venue, mirroring
//!   the paper's preprocessing.
//! * [`adtypes`] — ad-type sets: the paper's Table I pair and an
//!   AdWords-statistics-like triple.
//! * [`dist`] — the truncated-Gaussian and Zipf samplers the above are
//!   built on.
//! * [`StreamConfig`] / [`generate_streamed`] — the constant-memory
//!   streaming generator behind the million-customer sharding fixtures
//!   (DESIGN.md §15): records are randomly addressable, use no `rand`
//!   and no libm, and their first bits are pinned by smoke tests.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod activity_estimation;
pub mod adtypes;
pub mod dist;
pub mod foursquare;
pub mod stream;
pub mod synthetic;

pub use activity_estimation::{estimate_activity, ActivityEstimation};
pub use foursquare::{FoursquareConfig, FoursquareSim};
pub use stream::{generate_streamed, SplitMix64, StreamConfig};
pub use synthetic::{generate_synthetic, Range, SyntheticConfig};
