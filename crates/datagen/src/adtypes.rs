//! Ad-type sets.
//!
//! The paper initialises ad-type prices from average cost-per-click and
//! effectiveness from average click-through rates of an AdWords
//! statistics report; its worked example (Table I) uses a $1/0.1 text
//! link and a $2/0.4 photo link.

use muaa_core::{AdType, Money};

/// The paper's Table I: Text Link ($1, 0.1) and Photo Link ($2, 0.4).
pub fn paper_table1() -> Vec<AdType> {
    vec![
        AdType::new("Text Link", Money::from_dollars(1.0), 0.1),
        AdType::new("Photo Link", Money::from_dollars(2.0), 0.4),
    ]
}

/// An AdWords-statistics-like triple: prices track average CPC tiers
/// and effectiveness grows with price (the paper's "the higher their
/// costs are, the better their effects are" assumption). Used as the
/// default `q = 3` in experiments.
pub fn adwords_like() -> Vec<AdType> {
    vec![
        AdType::new("Text Link", Money::from_dollars(1.0), 0.1),
        AdType::new("Photo Link", Money::from_dollars(2.0), 0.4),
        AdType::new("In-App Video", Money::from_dollars(3.0), 0.55),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use muaa_core::AdTypeId;

    #[test]
    fn table1_matches_paper() {
        let t = paper_table1();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].cost, Money::from_dollars(1.0));
        assert_eq!(t[0].effectiveness, 0.1);
        assert_eq!(t[1].cost, Money::from_dollars(2.0));
        assert_eq!(t[1].effectiveness, 0.4);
    }

    #[test]
    fn costlier_types_are_more_effective() {
        for set in [paper_table1(), adwords_like()] {
            for w in set.windows(2) {
                assert!(w[0].cost < w[1].cost);
                assert!(w[0].effectiveness < w[1].effectiveness);
            }
            for (k, t) in set.iter().enumerate() {
                assert!(t.validate(AdTypeId::from(k)).is_ok());
            }
        }
    }
}
