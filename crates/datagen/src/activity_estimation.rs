//! Estimating per-tag activity curves `α_x(φ)` from observed events.
//!
//! The paper posits that tag activity levels ("coffee is active in the
//! mornings") exist as an input; in a deployed system they must be
//! *learned* from timestamped check-ins. This module turns a log of
//! `(tag, timestamp)` events into an
//! [`ActivityProfile`](muaa_core::ActivityProfile):
//!
//! 1. count events per (tag, hour slot);
//! 2. propagate counts up the taxonomy (a ramen check-in is evidence
//!    that "Food" is active too), with the same `κ/(sib+1)` decay as
//!    the Eq. 3 interest propagation;
//! 3. smooth each 24-slot histogram with a circular moving average and
//!    add-`β` smoothing so unobserved hours get a small floor;
//! 4. max-normalise each tag's curve into `[0, 1]`.
//!
//! Tags with no (direct or propagated) evidence fall back to an
//! all-active curve — a neutral choice that reduces Eq. 5 to the plain
//! Pearson correlation for those tags.

use muaa_core::{ActivityProfile, Timestamp};
use muaa_taxonomy::{TagId, Taxonomy};

/// Tuning knobs for [`estimate_activity`].
#[derive(Clone, Copy, Debug)]
pub struct ActivityEstimation {
    /// Ancestor-propagation factor (0 disables propagation).
    pub propagation: f64,
    /// Additive smoothing mass per hour slot.
    pub smoothing: f64,
    /// Half-width of the circular moving-average window (0 = off).
    pub window: usize,
}

impl Default for ActivityEstimation {
    fn default() -> Self {
        ActivityEstimation {
            propagation: 0.5,
            smoothing: 0.1,
            window: 1,
        }
    }
}

/// Estimate per-tag hourly activity from `(tag, time)` events.
pub fn estimate_activity(
    taxonomy: &Taxonomy,
    events: impl IntoIterator<Item = (TagId, Timestamp)>,
    config: ActivityEstimation,
) -> ActivityProfile {
    assert!(
        (0.0..=1.0).contains(&config.propagation),
        "propagation must be in [0,1]"
    );
    assert!(config.smoothing >= 0.0, "smoothing must be non-negative");
    let tags = taxonomy.len();
    let mut counts = vec![0.0_f64; tags * 24];

    for (tag, at) in events {
        assert!(tag.index() < tags, "event tag {tag} outside the taxonomy");
        let hour = at.hour_slot();
        // Direct evidence plus decayed evidence for every ancestor.
        let mut weight = 1.0;
        let mut cursor = Some(tag);
        while let Some(t) = cursor {
            counts[t.index() * 24 + hour] += weight;
            let parent = taxonomy.parent(t);
            if config.propagation == 0.0 {
                break;
            }
            weight *= config.propagation / (taxonomy.siblings(t) as f64 + 1.0);
            cursor = parent;
            if weight < 1e-9 {
                break;
            }
        }
    }

    let curves: Vec<Vec<f64>> = (0..tags)
        .map(|t| {
            let raw = &counts[t * 24..(t + 1) * 24];
            if raw.iter().all(|&c| c == 0.0) {
                return vec![1.0; 24]; // no evidence → neutral
            }
            // Circular moving average + additive smoothing.
            let smoothed: Vec<f64> = (0..24)
                .map(|h| {
                    let w = config.window as isize;
                    let mut acc = 0.0;
                    for dh in -w..=w {
                        let idx = (h as isize + dh).rem_euclid(24) as usize;
                        acc += raw[idx];
                    }
                    acc / (2 * w + 1) as f64 + config.smoothing
                })
                .collect();
            let max = smoothed.iter().copied().fold(0.0_f64, f64::max);
            smoothed
                .into_iter()
                .map(|v| (v / max).clamp(0.0, 1.0))
                .collect()
        })
        .collect();

    ActivityProfile::from_hourly(&curves).expect("curves are normalised into [0,1]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use muaa_taxonomy::TaxonomyBuilder;

    fn taxonomy() -> (Taxonomy, TagId, TagId, TagId) {
        let mut b = TaxonomyBuilder::new();
        let food = b.root("Food").unwrap();
        let cafe = b.child(food, "Cafe").unwrap();
        let bar = b.root("Bar").unwrap();
        (b.build(), food, cafe, bar)
    }

    fn events_at(tag: TagId, hours: &[f64]) -> Vec<(TagId, Timestamp)> {
        hours
            .iter()
            .map(|&h| (tag, Timestamp::from_hours(h)))
            .collect()
    }

    #[test]
    fn recovers_a_morning_peak() {
        let (tax, _food, cafe, bar) = taxonomy();
        let mut events = events_at(cafe, &[8.2, 8.5, 8.9, 9.1, 8.3, 8.7]);
        events.extend(events_at(bar, &[22.0, 23.0, 22.5]));
        let profile = estimate_activity(&tax, events, ActivityEstimation::default());
        // Café: morning ≫ night.
        assert!(
            profile.level(cafe.index(), Timestamp::from_hours(8.5))
                > profile.level(cafe.index(), Timestamp::from_hours(22.5)) * 2.0
        );
        // Bar: night ≫ morning.
        assert!(
            profile.level(bar.index(), Timestamp::from_hours(22.5))
                > profile.level(bar.index(), Timestamp::from_hours(8.5)) * 2.0
        );
    }

    #[test]
    fn evidence_propagates_to_ancestors() {
        let (tax, food, cafe, _bar) = taxonomy();
        let events = events_at(cafe, &[8.0; 10]);
        let profile = estimate_activity(&tax, events, ActivityEstimation::default());
        // Food inherited the café's morning signal.
        assert!(
            profile.level(food.index(), Timestamp::from_hours(8.5))
                > profile.level(food.index(), Timestamp::from_hours(15.0))
        );
    }

    #[test]
    fn propagation_can_be_disabled() {
        let (tax, food, cafe, _bar) = taxonomy();
        let events = events_at(cafe, &[8.0; 10]);
        let cfg = ActivityEstimation {
            propagation: 0.0,
            ..Default::default()
        };
        let profile = estimate_activity(&tax, events, cfg);
        // Food got no evidence → neutral all-ones curve.
        assert_eq!(profile.level(food.index(), Timestamp::from_hours(3.0)), 1.0);
        assert_eq!(
            profile.level(food.index(), Timestamp::from_hours(15.0)),
            1.0
        );
    }

    #[test]
    fn unobserved_tags_default_to_neutral() {
        let (tax, _food, cafe, bar) = taxonomy();
        let events = events_at(cafe, &[8.0]);
        let profile = estimate_activity(&tax, events, ActivityEstimation::default());
        assert_eq!(profile.level(bar.index(), Timestamp::from_hours(4.0)), 1.0);
    }

    #[test]
    fn smoothing_spreads_to_adjacent_hours() {
        let (tax, _food, cafe, _bar) = taxonomy();
        let events = events_at(cafe, &[12.5; 8]);
        let profile = estimate_activity(
            &tax,
            events,
            ActivityEstimation {
                window: 1,
                ..Default::default()
            },
        );
        // Neighbours of the peak hour see a substantial level; far hours
        // only the smoothing floor.
        let peak = profile.level(cafe.index(), Timestamp::from_hours(12.5));
        let near = profile.level(cafe.index(), Timestamp::from_hours(13.5));
        let far = profile.level(cafe.index(), Timestamp::from_hours(3.0));
        assert!((peak - 1.0).abs() < 1e-9);
        assert!(near > far * 2.0, "near {near} far {far}");
    }

    #[test]
    fn curves_are_valid_activity_levels() {
        let (tax, _food, cafe, bar) = taxonomy();
        let mut events = events_at(cafe, &[1.0, 5.0, 9.0, 13.0]);
        events.extend(events_at(bar, &[2.0, 2.1, 2.2]));
        let profile = estimate_activity(&tax, events, ActivityEstimation::default());
        for tag in tax.tags() {
            for h in 0..24 {
                let l = profile.level(tag.index(), Timestamp::from_hours(h as f64 + 0.5));
                assert!((0.0..=1.0).contains(&l));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the taxonomy")]
    fn rejects_foreign_tags() {
        let (tax, ..) = taxonomy();
        let _ = estimate_activity(
            &tax,
            vec![(TagId(99), Timestamp::MIDNIGHT)],
            ActivityEstimation::default(),
        );
    }
}
