//! A Foursquare-like check-in simulator.
//!
//! The paper's "real data" experiments run on a Tokyo check-in dataset
//! (users × venues × timestamps, each venue carrying a category from
//! the Foursquare taxonomy). That dataset is proprietary, so this
//! module synthesises a check-in log with the structural properties
//! the MUAA algorithms are sensitive to (DESIGN.md §5):
//!
//! * **Skewed venue popularity** — venues draw check-ins Zipf-style;
//! * **Clustered geography** — venues concentrate in a handful of
//!   districts mapped into `[0,1]²`, and a check-in's customer stands
//!   near the venue;
//! * **Per-category diurnal activity** — cafés in the morning, bars at
//!   night, offices in business hours; check-in timestamps are sampled
//!   from the venue category's curve and also drive the
//!   [`ActivityProfile`] used by the Pearson utility;
//! * **Heterogeneous user tastes** — each user favours a few leaf
//!   categories; their interest vector is derived from their own
//!   simulated check-in history via the paper's Eq. 1–3
//!   ([`InterestModel`]).
//!
//! Following the paper's preprocessing, **each check-in becomes one
//! customer** (same user at different timestamps = different
//! customers) and **each venue becomes one vendor**.

use crate::dist::{paper_range_sample, sample_hour, Zipf};
use crate::synthetic::Range;
use muaa_core::{
    ActivityProfile, Customer, InstanceBuilder, Money, PearsonUtility, Point, ProblemInstance,
    TagVector, Timestamp, Vendor,
};
use muaa_taxonomy::{foursquare_like, InterestModel, TagId, Taxonomy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the check-in simulator.
#[derive(Clone, Debug)]
pub struct FoursquareConfig {
    /// Number of check-ins to simulate (= number of customers).
    pub checkins: usize,
    /// Number of venues (= number of vendors before filtering).
    pub venues: usize,
    /// Number of distinct users behind the check-ins.
    pub users: usize,
    /// Number of geographic districts venues cluster into.
    pub districts: usize,
    /// Zipf exponent of venue popularity.
    pub popularity_skew: f64,
    /// Vendor budget range `[B⁻, B⁺]` in dollars.
    pub budget: Range,
    /// Vendor radius range `[r⁻, r⁺]`.
    pub radius: Range,
    /// Customer capacity range `[a⁻, a⁺]`.
    pub capacity: Range,
    /// View probability range `[p⁻, p⁺]`.
    pub view_probability: Range,
    /// Keep only venues with at least this many check-ins (the paper
    /// keeps venues with ≥ 10 check-ins). Set to 0 to keep all.
    pub min_checkins_per_venue: u32,
    /// Ad types.
    pub ad_types: Vec<muaa_core::AdType>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FoursquareConfig {
    fn default() -> Self {
        FoursquareConfig {
            checkins: 10_000,
            venues: 500,
            users: 400,
            districts: 12,
            popularity_skew: 0.8,
            budget: Range::new(10.0, 20.0),
            radius: Range::new(0.02, 0.03),
            capacity: Range::new(1.0, 5.0),
            view_probability: Range::new(0.1, 0.5),
            min_checkins_per_venue: 0,
            ad_types: crate::adtypes::adwords_like(),
            seed: 0xF5,
        }
    }
}

/// The simulator output: a problem instance plus the taxonomy-aware
/// utility model matching it.
pub struct FoursquareSim {
    /// The generated MUAA instance.
    pub instance: ProblemInstance,
    /// The Eq. 4/5 utility model with the per-category activity
    /// profile used during generation.
    pub model: PearsonUtility,
    /// The taxonomy the tag universe is defined over.
    pub taxonomy: Taxonomy,
    /// The raw check-in log, aligned with the instance's customers:
    /// `checkin_log[i]` is the venue category and timestamp of the
    /// check-in that became customer `i`. Useful for learning models
    /// from "historical" data (e.g.
    /// [`estimate_activity`](crate::estimate_activity)).
    pub checkin_log: Vec<(TagId, Timestamp)>,
}

// Manual impl: the full check-in log and tag universe would swamp any
// log line; a size summary is what callers actually want.
impl std::fmt::Debug for FoursquareSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FoursquareSim")
            .field("customers", &self.instance.customers().len())
            .field("vendors", &self.instance.vendors().len())
            .field("checkins", &self.checkin_log.len())
            .finish_non_exhaustive()
    }
}

impl FoursquareSim {
    /// Run the simulator.
    ///
    /// A configuration with `checkins > 0` requires at least one venue
    /// (a check-in without a venue is meaningless); zero check-ins with
    /// zero venues produces a valid empty instance.
    pub fn generate(config: &FoursquareConfig) -> Self {
        assert!(
            config.checkins == 0 || config.venues > 0,
            "check-ins need at least one venue"
        );
        if config.venues == 0 {
            let taxonomy = foursquare_like();
            let activity = build_activity(&taxonomy);
            let instance = InstanceBuilder::new()
                .ad_types(config.ad_types.iter().cloned())
                .build()
                .expect("empty instance is valid");
            return FoursquareSim {
                instance,
                model: PearsonUtility::new(activity),
                taxonomy,
                checkin_log: Vec::new(),
            };
        }
        let taxonomy = foursquare_like();
        let leaves = taxonomy.leaves();
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // --- Activity curves per root category, inherited by descendants.
        let activity = build_activity(&taxonomy);
        let hourly: Vec<[f64; 24]> = taxonomy
            .tags()
            .map(|t| {
                let mut curve = [0.0; 24];
                for (h, slot) in curve.iter_mut().enumerate() {
                    *slot = activity.level(t.index(), Timestamp::from_hours(h as f64));
                }
                curve
            })
            .collect();

        // --- Venues: district-clustered locations, leaf categories.
        let districts: Vec<Point> = (0..config.districts.max(1))
            .map(|_| Point::new(rng.gen(), rng.gen()))
            .collect();
        struct Venue {
            location: Point,
            category: TagId,
        }
        let venues: Vec<Venue> = (0..config.venues)
            .map(|_| {
                let d = districts[rng.gen_range(0..districts.len())];
                let spread = 0.04;
                let location = Point::new(
                    d.x + spread * crate::dist::standard_normal(&mut rng),
                    d.y + spread * crate::dist::standard_normal(&mut rng),
                )
                .clamp_to_box(0.0, 1.0);
                Venue {
                    location,
                    category: leaves[rng.gen_range(0..leaves.len())],
                }
            })
            .collect();
        let popularity = Zipf::new(config.venues.max(1), config.popularity_skew);

        // --- Users: favourite leaves with weights.
        struct User {
            favorites: Vec<(TagId, u32)>,
        }
        let users: Vec<User> = (0..config.users.max(1))
            .map(|_| {
                let k = rng.gen_range(3..=8.min(leaves.len().max(3)));
                let favorites = (0..k)
                    .map(|_| {
                        (
                            leaves[rng.gen_range(0..leaves.len())],
                            rng.gen_range(1..10u32),
                        )
                    })
                    .collect();
                User { favorites }
            })
            .collect();

        // --- Check-ins.
        struct CheckIn {
            user: usize,
            venue: usize,
            at: Timestamp,
        }
        let mut checkins: Vec<CheckIn> = Vec::with_capacity(config.checkins);
        let mut venue_counts = vec![0u32; config.venues];
        for _ in 0..config.checkins {
            let user = rng.gen_range(0..users.len());
            // Preference-aware venue pick: try a few Zipf draws and keep
            // the first whose category the user favours; otherwise the
            // last draw (popularity dominates, taste modulates).
            let mut venue = popularity
                .sample(&mut rng)
                .min(config.venues.saturating_sub(1));
            for _ in 0..3 {
                let cand = popularity
                    .sample(&mut rng)
                    .min(config.venues.saturating_sub(1));
                let cat = venues[cand].category;
                if users[user].favorites.iter().any(|&(f, _)| f == cat) {
                    venue = cand;
                    break;
                }
            }
            let at = Timestamp::from_hours(sample_hour(
                &mut rng,
                &hourly[venues[venue].category.index()],
            ));
            venue_counts[venue] += 1;
            checkins.push(CheckIn { user, venue, at });
        }
        // Sort by time of day — the arrival stream the online algorithm
        // consumes (the paper folds all timestamps into one 24h day).
        checkins.sort_by(|a, b| a.at.hours().total_cmp(&b.at.hours()));

        // --- Interest vectors from each user's own history (Eq. 1–3).
        let interest_model = InterestModel::new(&taxonomy);
        let mut user_history: Vec<Vec<(TagId, u32)>> = vec![Vec::new(); users.len()];
        for c in &checkins {
            let cat = venues[c.venue].category;
            match user_history[c.user].iter_mut().find(|(t, _)| *t == cat) {
                Some((_, n)) => *n += 1,
                None => user_history[c.user].push((cat, 1)),
            }
        }
        let user_interests: Vec<TagVector> = user_history
            .iter()
            .enumerate()
            .map(|(u, hist)| {
                if hist.is_empty() {
                    // Users with no check-ins fall back to their taste list.
                    interest_model
                        .interest_vector(&users[u].favorites)
                        .expect("valid favorite tags")
                } else {
                    interest_model
                        .interest_vector(hist)
                        .expect("valid history tags")
                }
            })
            .collect();

        // --- Materialise: one customer per check-in.
        let customers: Vec<Customer> = checkins
            .iter()
            .map(|c| {
                let v = &venues[c.venue];
                // The customer checks in *near* the venue.
                let location = Point::new(
                    v.location.x + 0.01 * crate::dist::standard_normal(&mut rng),
                    v.location.y + 0.01 * crate::dist::standard_normal(&mut rng),
                )
                .clamp_to_box(0.0, 1.0);
                Customer {
                    location,
                    capacity: (paper_range_sample(&mut rng, config.capacity.lo, config.capacity.hi)
                        .round() as u32)
                        .max(1),
                    view_probability: paper_range_sample(
                        &mut rng,
                        config.view_probability.lo,
                        config.view_probability.hi,
                    )
                    .clamp(0.0, 1.0),
                    interests: user_interests[c.user].clone(),
                    arrival: c.at,
                }
            })
            .collect();

        // --- One vendor per (sufficiently popular) venue.
        let vendors: Vec<Vendor> = venues
            .iter()
            .zip(&venue_counts)
            .filter(|&(_, &count)| count >= config.min_checkins_per_venue)
            .map(|(v, _)| Vendor {
                location: v.location,
                radius: paper_range_sample(&mut rng, config.radius.lo, config.radius.hi).max(0.0),
                budget: Money::from_dollars(paper_range_sample(
                    &mut rng,
                    config.budget.lo,
                    config.budget.hi,
                )),
                tags: interest_model
                    .vendor_vector(v.category)
                    .expect("valid category"),
            })
            .collect();

        let instance = InstanceBuilder::new()
            .customers(customers)
            .vendors(vendors)
            .ad_types(config.ad_types.iter().cloned())
            .build()
            .expect("simulator produces valid instances");
        let model = PearsonUtility::new(activity);
        let checkin_log: Vec<(TagId, Timestamp)> = checkins
            .iter()
            .map(|c| (venues[c.venue].category, c.at))
            .collect();
        FoursquareSim {
            instance,
            model,
            taxonomy,
            checkin_log,
        }
    }
}

/// Diurnal activity per root category, inherited by all descendants.
fn build_activity(taxonomy: &Taxonomy) -> ActivityProfile {
    // Hourly templates (0h..23h).
    fn curve(peaks: &[(usize, usize, f64)], base: f64) -> Vec<f64> {
        let mut c = vec![base; 24];
        for &(from, to, level) in peaks {
            for slot in c.iter_mut().take(to.min(24)).skip(from) {
                *slot = slot.max(level);
            }
        }
        c
    }
    let template_for = |root_name: &str| -> Vec<f64> {
        match root_name {
            "Food" => curve(&[(7, 9, 0.8), (11, 14, 1.0), (18, 21, 1.0)], 0.2),
            "Nightlife Spot" => curve(&[(19, 24, 1.0), (0, 3, 0.8)], 0.05),
            "Shop & Service" => curve(&[(10, 20, 1.0)], 0.1),
            "Professional & Other Places" => curve(&[(8, 18, 1.0)], 0.05),
            "College & University" => curve(&[(8, 17, 1.0)], 0.1),
            "Outdoors & Recreation" => curve(&[(6, 10, 0.8), (15, 19, 1.0)], 0.2),
            "Travel & Transport" => curve(&[(7, 10, 1.0), (17, 20, 1.0)], 0.4),
            "Arts & Entertainment" => curve(&[(12, 23, 1.0)], 0.1),
            "Residence" => curve(&[(18, 24, 0.9), (0, 8, 0.8)], 0.4),
            _ => vec![0.5; 24],
        }
    };
    let curves: Vec<Vec<f64>> = taxonomy
        .tags()
        .map(|t| {
            let root = *taxonomy.path_from_root(t).first().expect("non-empty path");
            template_for(taxonomy.name(root))
        })
        .collect();
    ActivityProfile::from_hourly(&curves).expect("templates are valid curves")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FoursquareConfig {
        FoursquareConfig {
            checkins: 800,
            venues: 60,
            users: 50,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_sizes() {
        let sim = FoursquareSim::generate(&small());
        assert_eq!(sim.instance.num_customers(), 800);
        assert_eq!(sim.instance.num_vendors(), 60);
        assert_eq!(sim.instance.tag_universe(), sim.taxonomy.len());
    }

    #[test]
    fn min_checkin_filter_drops_unpopular_venues() {
        let mut cfg = small();
        cfg.min_checkins_per_venue = 10;
        let sim = FoursquareSim::generate(&cfg);
        assert!(
            sim.instance.num_vendors() < 60,
            "filter should drop tail venues"
        );
        assert!(sim.instance.num_vendors() > 0);
    }

    #[test]
    fn arrivals_are_sorted_within_the_day() {
        let sim = FoursquareSim::generate(&small());
        let hours: Vec<f64> = sim
            .instance
            .customers()
            .iter()
            .map(|c| c.arrival.hours())
            .collect();
        assert!(hours.windows(2).all(|w| w[0] <= w[1]));
        assert!(hours.iter().all(|&h| (0.0..24.0).contains(&h)));
    }

    #[test]
    fn popularity_is_skewed() {
        // Some venues should attract far more check-in-adjacent
        // customers than others: compare customer counts near the most
        // and least popular venue locations indirectly via vendor
        // budgets? Simpler: re-run generation internals by checking the
        // spread of customers per venue through instance statistics —
        // here we just assert the Zipf sampler's effect shows up as
        // many co-located customers.
        let sim = FoursquareSim::generate(&small());
        let inst = &sim.instance;
        // Count customers exactly matching each vendor's rounded cell.
        use std::collections::HashMap;
        let mut counts: HashMap<(i64, i64), usize> = HashMap::new();
        for c in inst.customers() {
            let key = ((c.location.x * 50.0) as i64, (c.location.y * 50.0) as i64);
            *counts.entry(key).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let mean = inst.num_customers() as f64 / counts.len() as f64;
        assert!(max as f64 > 3.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn interest_vectors_reflect_history() {
        let sim = FoursquareSim::generate(&small());
        // Every customer has a non-zero interest vector over the taxonomy.
        for c in sim.instance.customers().iter().take(100) {
            assert!(c.interests.total() > 0.0);
            assert_eq!(c.interests.len(), sim.taxonomy.len());
        }
    }

    #[test]
    fn vendor_tags_peak_at_category_path() {
        let sim = FoursquareSim::generate(&small());
        for v in sim.instance.vendors().iter().take(20) {
            let max = v.tags.as_slice().iter().copied().fold(0.0_f64, f64::max);
            assert!((max - 1.0).abs() < 1e-9, "vendor vector should peak at 1");
        }
    }

    #[test]
    fn empty_config_yields_empty_instance() {
        let cfg = FoursquareConfig {
            checkins: 0,
            venues: 0,
            users: 0,
            ..Default::default()
        };
        let sim = FoursquareSim::generate(&cfg);
        assert_eq!(sim.instance.num_customers(), 0);
        assert_eq!(sim.instance.num_vendors(), 0);
        assert_eq!(sim.instance.num_ad_types(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one venue")]
    fn checkins_without_venues_rejected() {
        let cfg = FoursquareConfig {
            checkins: 10,
            venues: 0,
            ..Default::default()
        };
        let _ = FoursquareSim::generate(&cfg);
    }

    #[test]
    fn single_venue_single_user_works() {
        let cfg = FoursquareConfig {
            checkins: 20,
            venues: 1,
            users: 1,
            ..Default::default()
        };
        let sim = FoursquareSim::generate(&cfg);
        assert_eq!(sim.instance.num_customers(), 20);
        assert_eq!(sim.instance.num_vendors(), 1);
    }

    #[test]
    fn filter_all_venues_leaves_valid_empty_vendor_set() {
        let mut cfg = small();
        cfg.min_checkins_per_venue = u32::MAX;
        let sim = FoursquareSim::generate(&cfg);
        assert_eq!(sim.instance.num_vendors(), 0);
        assert_eq!(sim.instance.num_customers(), 800);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FoursquareSim::generate(&small());
        let b = FoursquareSim::generate(&small());
        assert_eq!(a.instance.num_vendors(), b.instance.num_vendors());
        for (x, y) in a.instance.customers().iter().zip(b.instance.customers()) {
            assert_eq!(x.location, y.location);
        }
    }

    #[test]
    fn activity_profile_distinguishes_day_and_night() {
        let sim = FoursquareSim::generate(&small());
        let tax = &sim.taxonomy;
        let bar = tax.by_name("Bar").unwrap();
        let office = tax.by_name("Office").unwrap();
        let act = sim.model.activity();
        // Bars: more active at 22h than 9h; offices: the opposite.
        assert!(
            act.level(bar.index(), Timestamp::from_hours(22.0))
                > act.level(bar.index(), Timestamp::from_hours(9.0))
        );
        assert!(
            act.level(office.index(), Timestamp::from_hours(10.0))
                > act.level(office.index(), Timestamp::from_hours(23.0))
        );
    }
}
