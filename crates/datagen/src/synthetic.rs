//! The paper's synthetic workload (§V-A, "Real/Synthetic Data Sets").
//!
//! Customer locations follow a Gaussian `N(0.5, 1²)` clamped to the
//! unit square; vendor locations are uniform. Budgets, radii,
//! capacities and view probabilities are truncated-Gaussian draws over
//! their configured ranges; tag vectors are random over a small tag
//! universe (the synthetic experiments do not use the taxonomy). The
//! customers' timestamps are their arrival order, as in the paper
//! ("only the orders of the customers affect the online algorithm").

use crate::adtypes;
use crate::dist::paper_range_sample;
use muaa_core::{
    AdType, Customer, InstanceBuilder, Money, Point, ProblemInstance, TagVector, Timestamp, Vendor,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An inclusive parameter range `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Range {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Range {
    /// Construct, asserting `lo ≤ hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        Range { lo, hi }
    }

    /// Draw with the paper's truncated-Gaussian rule.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        paper_range_sample(rng, self.lo, self.hi)
    }
}

impl From<(f64, f64)> for Range {
    fn from((lo, hi): (f64, f64)) -> Self {
        Range::new(lo, hi)
    }
}

/// Configuration of the synthetic generator. Defaults reconstruct the
/// paper's Table IV defaults (see `DESIGN.md` §5).
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of customers `m`.
    pub customers: usize,
    /// Number of vendors `n`.
    pub vendors: usize,
    /// Vendor budget range `[B⁻, B⁺]` in dollars.
    pub budget: Range,
    /// Vendor radius range `[r⁻, r⁺]`.
    pub radius: Range,
    /// Customer capacity range `[a⁻, a⁺]` (rounded to integers ≥ 1).
    pub capacity: Range,
    /// View probability range `[p⁻, p⁺]`.
    pub view_probability: Range,
    /// Ad types (defaults to [`adtypes::adwords_like`]).
    pub ad_types: Vec<AdType>,
    /// Tag-universe size for the random tag vectors.
    pub tags: usize,
    /// RNG seed — same seed, same instance.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            customers: 10_000,
            vendors: 500,
            budget: Range::new(10.0, 20.0),
            radius: Range::new(0.02, 0.03),
            capacity: Range::new(1.0, 5.0),
            view_probability: Range::new(0.1, 0.5),
            ad_types: adtypes::adwords_like(),
            tags: 8,
            seed: 0xDA7A,
        }
    }
}

/// Generate a synthetic MUAA instance per the paper's recipe.
pub fn generate_synthetic(config: &SyntheticConfig) -> ProblemInstance {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let tags = config.tags;

    // Random tag vector with a planted two-cluster structure so that
    // Pearson similarities are meaningfully spread instead of pure
    // noise: half the universe "lifestyle", half "goods"; each entity
    // leans one way.
    let tag_vec = |rng: &mut SmallRng| -> TagVector {
        let lean: f64 = rng.gen();
        let scores: Vec<f64> = (0..tags)
            .map(|k| {
                let cluster_boost = if k < tags / 2 { lean } else { 1.0 - lean };
                (0.15 + 0.7 * cluster_boost * rng.gen::<f64>()).clamp(0.0, 1.0)
            })
            .collect();
        TagVector::new_unchecked(scores)
    };

    let customers: Vec<Customer> = (0..config.customers)
        .map(|i| {
            // Gaussian N(0.5, 1²) clamped to the unit square.
            let loc = Point::new(
                0.5 + crate::dist::standard_normal(&mut rng),
                0.5 + crate::dist::standard_normal(&mut rng),
            )
            .clamp_to_box(0.0, 1.0);
            Customer {
                location: loc,
                capacity: (config.capacity.sample(&mut rng).round() as u32).max(1),
                view_probability: config.view_probability.sample(&mut rng).clamp(0.0, 1.0),
                interests: tag_vec(&mut rng),
                // Arrival order doubles as the timestamp.
                arrival: Timestamp::from_hours(24.0 * i as f64 / config.customers.max(1) as f64),
            }
        })
        .collect();

    let vendors: Vec<Vendor> = (0..config.vendors)
        .map(|_| Vendor {
            location: Point::new(rng.gen(), rng.gen()),
            radius: config.radius.sample(&mut rng).max(0.0),
            budget: Money::from_dollars(config.budget.sample(&mut rng)),
            tags: tag_vec(&mut rng),
        })
        .collect();

    InstanceBuilder::new()
        .customers(customers)
        .vendors(vendors)
        .ad_types(config.ad_types.iter().cloned())
        .build()
        .expect("synthetic generator produces valid instances")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            customers: 200,
            vendors: 20,
            ..Default::default()
        }
    }

    #[test]
    fn respects_counts_and_ranges() {
        let cfg = small();
        let inst = generate_synthetic(&cfg);
        assert_eq!(inst.num_customers(), 200);
        assert_eq!(inst.num_vendors(), 20);
        assert_eq!(inst.num_ad_types(), 3);
        for c in inst.customers() {
            assert!((1..=5).contains(&c.capacity));
            assert!((0.1..=0.5).contains(&c.view_probability));
            assert!((0.0..=1.0).contains(&c.location.x));
            assert!((0.0..=1.0).contains(&c.location.y));
        }
        for v in inst.vendors() {
            assert!((0.02..=0.03).contains(&v.radius));
            let b = v.budget.as_dollars();
            assert!((10.0..=20.0).contains(&b), "budget {b}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small();
        let a = generate_synthetic(&cfg);
        let b = generate_synthetic(&cfg);
        assert_eq!(a.customers().len(), b.customers().len());
        for (x, y) in a.customers().iter().zip(b.customers()) {
            assert_eq!(x.location, y.location);
            assert_eq!(x.capacity, y.capacity);
        }
        let mut cfg2 = small();
        cfg2.seed += 1;
        let c = generate_synthetic(&cfg2);
        assert!(a
            .customers()
            .iter()
            .zip(c.customers())
            .any(|(x, y)| x.location != y.location));
    }

    #[test]
    fn customer_locations_cluster_around_center() {
        // With sd = 1 over a unit box, clamping pushes plenty of mass to
        // the borders, but the raw mean should still be ~0.5.
        let cfg = SyntheticConfig {
            customers: 3000,
            vendors: 1,
            ..Default::default()
        };
        let inst = generate_synthetic(&cfg);
        let mean_x: f64 = inst.customers().iter().map(|c| c.location.x).sum::<f64>()
            / inst.num_customers() as f64;
        assert!((mean_x - 0.5).abs() < 0.05, "mean x {mean_x}");
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        let inst = generate_synthetic(&small());
        let hours: Vec<f64> = inst.customers().iter().map(|c| c.arrival.hours()).collect();
        assert!(hours.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn similarities_are_spread_not_degenerate() {
        use muaa_core::{PearsonUtility, UtilityModel};
        let cfg = small();
        let inst = generate_synthetic(&cfg);
        let model = PearsonUtility::uniform(cfg.tags);
        let mut positive = 0usize;
        let mut total = 0usize;
        for (cid, c) in inst.customers_enumerated().take(50) {
            for (vid, v) in inst.vendors_enumerated() {
                let s = model.similarity(cid, c, vid, v);
                assert!((0.0..=1.0).contains(&s));
                total += 1;
                if s > 0.0 {
                    positive += 1;
                }
            }
        }
        // The planted cluster structure should make a sizable fraction
        // of pairs positively similar (and a sizable fraction not).
        let frac = positive as f64 / total as f64;
        assert!(
            frac > 0.2 && frac < 0.95,
            "positive-similarity fraction {frac}"
        );
    }
}
