//! Sampling primitives: truncated Gaussians and Zipf.
//!
//! The paper draws every per-entity parameter (budget, radius,
//! capacity, view probability) from a Gaussian
//! `N((lo+hi)/2, (hi−lo)²)` truncated to `[lo, hi]`. Zipf sampling
//! models the heavily skewed venue popularity seen in check-in data.

use rand::Rng;

/// Draw a standard normal via Box–Muller (we keep the dependency set to
/// `rand` alone; `rand_distr` would also work).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Gaussian `N(mean, sd²)` truncated to `[lo, hi]` by rejection, with a
/// clamp fallback after 64 rejections (only reachable for pathological
/// parameterisations; the paper's `sd = hi − lo` accepts quickly).
pub fn truncated_gaussian<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    sd: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "invalid range [{lo}, {hi}]");
    if lo == hi {
        return lo;
    }
    for _ in 0..64 {
        let x = mean + sd * standard_normal(rng);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    (mean + sd * standard_normal(rng)).clamp(lo, hi)
}

/// The paper's parameter draw: Gaussian centred on the range midpoint
/// with standard deviation the range width, truncated to the range.
pub fn paper_range_sample<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    truncated_gaussian(rng, (lo + hi) / 2.0, hi - lo, lo, hi)
}

/// A Zipf sampler over `{0, …, n−1}` with exponent `s`: rank `k` has
/// probability proportional to `1/(k+1)^s`. Precomputes the CDF for
/// `O(log n)` draws.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler; `n ≥ 1`, `s ≥ 0` (s = 0 is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one element");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `{0, …, n−1}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.total_cmp(&u))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Sample an hour of day (fractional) from a 24-slot weight curve by
/// inverse-CDF with uniform jitter inside the chosen slot. Returns a
/// value in `[0, 24)`. Falls back to uniform when all weights vanish.
pub fn sample_hour<R: Rng + ?Sized>(rng: &mut R, hourly_weights: &[f64; 24]) -> f64 {
    let total: f64 = hourly_weights.iter().sum();
    if total <= 0.0 {
        return rng.gen::<f64>() * 24.0;
    }
    let mut u = rng.gen::<f64>() * total;
    for (h, &w) in hourly_weights.iter().enumerate() {
        if u < w {
            return h as f64 + rng.gen::<f64>();
        }
        u -= w;
    }
    23.0 + rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn truncated_gaussian_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = paper_range_sample(&mut rng, 10.0, 20.0);
            assert!((10.0..=20.0).contains(&x));
        }
    }

    #[test]
    fn degenerate_range_returns_point() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(paper_range_sample(&mut rng, 5.0, 5.0), 5.0);
    }

    #[test]
    fn truncated_gaussian_centres_on_midpoint() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..5000)
            .map(|_| paper_range_sample(&mut rng, 0.0, 1.0))
            .sum::<f64>()
            / 5000.0;
        assert!((mean - 0.5).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..20000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn zipf_is_skewed_towards_low_ranks() {
        let mut rng = SmallRng::seed_from_u64(5);
        let z = Zipf::new(100, 1.0);
        let mut counts = [0usize; 100];
        for _ in 0..20000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rough check of the 1/k shape: rank 0 ≈ 10× rank 9.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(ratio > 5.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(6);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..10000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "count {c}");
        }
    }

    #[test]
    fn sample_hour_follows_the_curve() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut weights = [0.0_f64; 24];
        weights[8] = 1.0; // only 8am is active
        for _ in 0..200 {
            let h = sample_hour(&mut rng, &weights);
            assert!((8.0..9.0).contains(&h), "hour {h}");
        }
        // All-zero curve falls back to uniform and stays in range.
        let zero = [0.0_f64; 24];
        for _ in 0..100 {
            let h = sample_hour(&mut rng, &zero);
            assert!((0.0..24.0).contains(&h));
        }
    }
}
